// Deterministic pseudo-random number generation for AutoNCS.
//
// All stochastic components of the framework (pattern generation, k-means
// seeding, recall noise, placement jitter) draw from this generator so that
// every test, example, and benchmark is bit-reproducible across platforms.
// The engine is xoshiro256** seeded through SplitMix64, which has no
// platform-dependent behaviour (unlike std::default_random_engine) and no
// distribution-implementation variance (unlike std::normal_distribution).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace autoncs::util {

/// SplitMix64 stepper; used to expand a single 64-bit seed into the
/// 256-bit xoshiro state and as a cheap stateless hash.
std::uint64_t split_mix64(std::uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  /// Seeds the full state from a single user seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, cached second draw).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> data) {
    if (data.size() < 2) return;
    for (std::size_t i = data.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      std::swap(data[i], data[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm
  /// would be possible; we use shuffle of a prefix for clarity). Result is
  /// in random order. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream from one experiment seed.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace autoncs::util
