// Crash flight recorder: a bounded lock-free ring of the most recent
// trace-span begin/end events and log lines, kept cheap enough to stay
// armed for the whole run and dumped as a JSON artifact only when the
// flow dies — from the FlowError path (telemetry session) or from a
// fatal-signal handler.
//
// Passivity contract (same as trace/metrics): disabled, every hook is a
// single relaxed atomic load; enabled, a record is a relaxed fetch_add
// plus a handful of plain stores into a fixed slot — no allocation, no
// lock, no syscall. Nothing in the flow reads the ring.
//
// Concurrency: writers claim slots with an atomic head counter; a reader
// validates each slot's sequence number after copying it and skips slots
// that were torn by a concurrent writer. The fatal-signal dump path uses
// only async-signal-safe primitives (open/write, manual integer
// formatting) — a slot being overwritten mid-crash loses that one entry,
// which is acceptable for a post-mortem aid.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace autoncs::util {

namespace flight_detail {
extern std::atomic<bool> g_enabled;
}

/// True while the flight recorder is armed. Relaxed load — safe and
/// cheap from any thread.
inline bool flight_enabled() {
  return flight_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Slots in the ring; oldest entries are overwritten once full.
constexpr std::size_t kFlightRingSlots = 1024;

/// Clears the ring, resets the epoch and arms the recorder (idempotent).
void start_flight_recorder();

/// Disarms the recorder; the ring contents stay readable for a dump.
void stop_flight_recorder();

/// Records a span boundary. `name` must be a static string (the trace
/// layer stores span labels by pointer already).
void flight_record_span(const char* name, bool begin);

/// Records one formatted log line (truncated to the slot's text buffer).
void flight_record_log(const char* line);

/// Entries currently readable (capped at kFlightRingSlots).
std::size_t flight_recorder_size();

/// Renders the ring oldest-to-newest as a JSON document:
///   {"schema":"autoncs-flight/1","events":[{"type":...,"t_us":...,
///    "tid":...,"name"|"line":...}, ...]}
/// Safe from normal (non-signal) code.
std::string flight_recorder_json();

/// Writes flight_recorder_json() to `path`; false on I/O failure.
bool flight_write_json(const std::string& path);

/// Async-signal-safe dump of the ring as the same JSON document to an
/// already-open file descriptor — the fatal-signal handler path.
void flight_dump_fd(int fd);

}  // namespace autoncs::util
