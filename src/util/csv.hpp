// CSV emission for benchmark series (each figure bench can dump its series
// for external plotting in addition to the console tables).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace autoncs::util {

/// Streams rows of a CSV file; values are quoted only when needed.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; the number of fields must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with full precision.
  void row_values(std::initializer_list<double> values);

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

 private:
  void write_row(const std::vector<std::string>& fields);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Escapes one CSV field (RFC 4180 quoting).
std::string csv_escape(const std::string& field);

}  // namespace autoncs::util
