#include "util/check.hpp"

#include <sstream>

namespace autoncs::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ':' << line << " — "
      << message;
  throw CheckError(oss.str());
}

}  // namespace autoncs::util
