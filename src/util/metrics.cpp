#include "util/metrics.hpp"

#include <mutex>
#include <unordered_map>

#include "util/json.hpp"

namespace autoncs::util {

namespace metrics_detail {
std::atomic<bool> g_enabled{false};
}

namespace {

/// Registry state. Kind maps are name -> index into the snapshot vectors,
/// so repeated touches update in place while first-touch order is kept for
/// deterministic export.
struct Registry {
  std::mutex mutex;
  MetricsSnapshot snapshot;
  std::unordered_map<std::string, std::size_t> counter_index;
  std::unordered_map<std::string, std::size_t> gauge_index;
  std::unordered_map<std::string, std::size_t> histogram_index;
  std::unordered_map<std::string, std::size_t> series_index;
  std::vector<std::string> prefixes;

  std::string qualify(const std::string& name) const {
    if (prefixes.empty()) return name;
    std::string out;
    for (const auto& p : prefixes) {
      out += p;
      out += '/';
    }
    out += name;
    return out;
  }

  void clear() {
    snapshot = MetricsSnapshot{};
    counter_index.clear();
    gauge_index.clear();
    histogram_index.clear();
    series_index.clear();
    // Prefixes are scoping state owned by live MetricPrefix objects, not
    // session data — they survive a session restart.
  }
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

void start_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.clear();
  metrics_detail::g_enabled.store(true, std::memory_order_release);
}

MetricsSnapshot stop_metrics() {
  metrics_detail::g_enabled.store(false, std::memory_order_release);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot out = std::move(r.snapshot);
  r.clear();
  return out;
}

void metric_count(const std::string& name, double delta) {
  if (!metrics_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::string full = r.qualify(name);
  auto [it, inserted] =
      r.counter_index.try_emplace(full, r.snapshot.counters.size());
  if (inserted) r.snapshot.counters.push_back({full, 0.0});
  r.snapshot.counters[it->second].value += delta;
}

void metric_gauge(const std::string& name, double value) {
  if (!metrics_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::string full = r.qualify(name);
  auto [it, inserted] =
      r.gauge_index.try_emplace(full, r.snapshot.gauges.size());
  if (inserted) r.snapshot.gauges.push_back({full, 0.0});
  r.snapshot.gauges[it->second].value = value;
}

void metric_observe(const std::string& name, double value) {
  if (!metrics_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::string full = r.qualify(name);
  auto [it, inserted] =
      r.histogram_index.try_emplace(full, r.snapshot.histograms.size());
  if (inserted) r.snapshot.histograms.push_back({full, 0, 0.0, value, value});
  auto& h = r.snapshot.histograms[it->second];
  h.count += 1;
  h.sum += value;
  h.min = value < h.min ? value : h.min;
  h.max = value > h.max ? value : h.max;
}

void metric_sample(const std::string& name, double index, double value) {
  if (!metrics_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::string full = r.qualify(name);
  auto [it, inserted] =
      r.series_index.try_emplace(full, r.snapshot.series.size());
  if (inserted) r.snapshot.series.push_back({full, {}});
  r.snapshot.series[it->second].samples.emplace_back(index, value);
}

void push_metric_prefix(const std::string& prefix) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.prefixes.push_back(prefix);
}

void pop_metric_prefix() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.prefixes.empty()) r.prefixes.pop_back();
}

std::string metrics_jsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  const auto line = [&out](const JsonWriter& json) {
    out += json.str();
    out += '\n';
  };
  for (const auto& c : snapshot.counters) {
    JsonWriter json;
    json.begin_object()
        .field("type", "counter")
        .field("name", c.name)
        .field("value", c.value)
        .end_object();
    line(json);
  }
  for (const auto& g : snapshot.gauges) {
    JsonWriter json;
    json.begin_object()
        .field("type", "gauge")
        .field("name", g.name)
        .field("value", g.value)
        .end_object();
    line(json);
  }
  for (const auto& h : snapshot.histograms) {
    JsonWriter json;
    json.begin_object()
        .field("type", "histogram")
        .field("name", h.name)
        .field("count", h.count)
        .field("sum", h.sum)
        .field("min", h.min)
        .field("max", h.max)
        .field("mean", h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0)
        .end_object();
    line(json);
  }
  for (const auto& s : snapshot.series) {
    for (const auto& [index, value] : s.samples) {
      JsonWriter json;
      json.begin_object()
          .field("type", "sample")
          .field("name", s.name)
          .field("index", index)
          .field("value", value)
          .end_object();
      line(json);
    }
  }
  return out;
}

}  // namespace autoncs::util
