#include "util/mem.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "util/metrics.hpp"

namespace autoncs::util {

namespace mem_detail {
std::atomic<bool> g_enabled{false};
}

namespace {

/// Reads one "Vm...: N kB" field from /proc/self/status. Returns 0 on
/// non-Linux platforms or when the field is missing.
std::size_t proc_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &value) == 1) {
        kb = static_cast<std::size_t>(value);
      }
      break;
    }
  }
  std::fclose(file);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

struct MemRegistry {
  std::mutex mutex;
  std::vector<MemStageSample> stages;
  std::vector<MemStructure> structures;
};

MemRegistry& registry() {
  static MemRegistry* r = new MemRegistry();
  return *r;
}

}  // namespace

std::size_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return proc_status_kb("VmHWM") * 1024; }

void start_mem_accounting() {
  MemRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.stages.clear();
  r.structures.clear();
  mem_detail::g_enabled.store(true, std::memory_order_release);
}

MemSnapshot mem_snapshot() {
  MemSnapshot out;
  MemRegistry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    out.stages = r.stages;
    out.structures = r.structures;
  }
  out.peak_rss_bytes = peak_rss_bytes();
  return out;
}

void stop_mem_accounting() {
  mem_detail::g_enabled.store(false, std::memory_order_release);
  MemRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.stages.clear();
  r.structures.clear();
}

void mem_stage_sample(const std::string& stage) {
  if (!mem_accounting_enabled()) return;
  MemStageSample sample;
  sample.stage = stage;
  sample.current_rss_bytes = current_rss_bytes();
  sample.peak_rss_bytes = peak_rss_bytes();
  MemRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.stages.push_back(std::move(sample));
}

void mem_record_bytes(const std::string& name, double bytes,
                      bool deterministic) {
  if (deterministic && metrics_enabled()) {
    metric_gauge("mem/" + name + "_bytes", bytes);
  }
  if (!mem_accounting_enabled()) return;
  MemRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (MemStructure& s : r.structures) {
    if (s.name == name) {
      s.bytes = bytes;
      return;
    }
  }
  r.structures.push_back({name, bytes});
}

}  // namespace autoncs::util
