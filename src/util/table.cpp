#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace autoncs::util {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ConsoleTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void ConsoleTable::add_separator() { rows_.emplace_back(); }

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) {
      s.append(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      s += ' ';
      s += cell;
      s.append(widths[c] - cell.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string fmt_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace autoncs::util
