// Rendering of 2-D scalar fields (connection matrices, congestion maps,
// placement layouts) as ASCII art and binary PGM images. These stand in for
// the paper's Figures 3-6 and 10 in a terminal-only environment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autoncs::util {

/// Row-major 2-D grid of doubles with named dimensions.
class Field2D {
 public:
  Field2D() = default;
  Field2D(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Adds `v` into the cell, clamping indices into range (useful when
  /// rasterizing geometry that may touch the boundary).
  void splat(std::size_t r, std::size_t c, double v);

  double max_value() const;
  double sum() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Renders the field as ASCII art (' ', '.', ':', '+', '#', '@' ramp),
/// downsampling to at most `max_cols` x `max_rows` characters. Row 0 is
/// printed at the top.
std::string render_ascii(const Field2D& field, std::size_t max_rows = 40,
                         std::size_t max_cols = 80);

/// Writes the field as an 8-bit binary PGM (values scaled to [0, 255]).
/// Returns false on I/O failure.
bool write_pgm(const Field2D& field, const std::string& path);

/// Rasterizes a binary connection matrix into a Field2D (1 per connection)
/// for rendering; handy overload so callers don't repeat the loop.
Field2D field_from_bitmap(const std::vector<std::vector<bool>>& bits);

}  // namespace autoncs::util
