#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "util/error.hpp"

namespace autoncs::util {

namespace {

/// Hot-path gate; everything else lives behind it under a mutex.
std::atomic<bool> g_armed{false};

struct PointState {
  std::size_t max_fires = 0;  // SIZE_MAX = unlimited
  std::size_t fires = 0;
  std::size_t hits = 0;
  bool armed = false;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, PointState>& registry() {
  static std::map<std::string, PointState> r;
  return r;
}

/// The authoritative injection-point list. Every AUTONCS_FAULT_POINT call
/// site must use one of these names; tests/fault walks this catalog.
const std::vector<std::string>& catalog() {
  static const std::vector<std::string> points = {
      "cg.grad_nan",                  // poison the gradient at an accepted CG point
      "cg.nan",                       // poison one CG objective value
      "flow.bad_alloc",               // allocation failure inside the pipeline
      "flow.crash_after_placement",   // hard crash after the placement checkpoint
      "lanczos.no_converge",          // force a Lanczos convergence failure
      "router.force_overflow",        // pretend a segment exhausts relaxation
  };
  return points;
}

/// Reads AUTONCS_FAULT once at process start so headless runs (tests, CI)
/// can arm faults without touching the CLI.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("AUTONCS_FAULT");
    if (spec != nullptr && spec[0] != '\0') fault_arm(spec);
  }
};
const EnvArm g_env_arm;

}  // namespace

bool fault_enabled() {
  return g_armed.load(std::memory_order_relaxed);
}

bool fault_should_fire(const char* point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(point);
  if (it == registry().end() || !it->second.armed) return false;
  PointState& state = it->second;
  ++state.hits;
  if (state.fires >= state.max_fires) return false;
  ++state.fires;
  return true;
}

void fault_arm(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    const std::size_t lo = entry.find_first_not_of(" \t");
    if (lo == std::string::npos) continue;
    const std::size_t hi = entry.find_last_not_of(" \t");
    entry = entry.substr(lo, hi - lo + 1);

    std::string name = entry;
    std::size_t max_fires = 1;
    const std::size_t at = entry.find('@');
    if (at != std::string::npos) {
      name = entry.substr(0, at);
      const std::string count = entry.substr(at + 1);
      if (count == "*") {
        max_fires = std::numeric_limits<std::size_t>::max();
      } else if (!count.empty() &&
                 count.find_first_not_of("0123456789") == std::string::npos &&
                 count.find_first_not_of('0') != std::string::npos) {
        max_fires = static_cast<std::size_t>(std::stoull(count));
      } else {
        throw InputError("input.fault_spec", "fault",
                         "malformed fire count '" + count + "' in fault spec '" +
                             entry + "'");
      }
    }
    const auto& known = catalog();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw InputError("input.fault_spec", "fault",
                       "unknown fault point '" + name +
                           "' (see fault_point_catalog())");
    }
    std::lock_guard<std::mutex> lock(registry_mutex());
    PointState& state = registry()[name];
    state.armed = true;
    state.max_fires = max_fires;
    state.fires = 0;
    state.hits = 0;
    g_armed.store(true, std::memory_order_relaxed);
  }
}

void fault_disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  g_armed.store(false, std::memory_order_relaxed);
}

std::size_t fault_fire_count(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.fires;
}

std::size_t fault_hit_count(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.hits;
}

const std::vector<std::string>& fault_point_catalog() { return catalog(); }

}  // namespace autoncs::util
