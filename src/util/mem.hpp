// Stage memory accounting (docs/observability.md).
//
// Two kinds of measurements, both passive — nothing in the flow reads
// them back, and every call is one relaxed atomic load while accounting
// is disabled (the default):
//
//  - RSS samples at stage boundaries (mem_stage_sample): current and
//    peak resident set size read from /proc/self/status. Inherently
//    nondeterministic (allocator, thread count, kernel), so these only
//    ever land in the run manifest, never in metrics.
//  - Instrumented byte counters on the big flow structures
//    (mem_record_bytes): logical footprints computed from element counts
//    (size() * sizeof, not capacity). A structure whose size is
//    bit-identical across thread counts may be recorded `deterministic`,
//    which additionally emits a "mem/<name>_bytes" gauge into the
//    metrics stream; everything else stays manifest-only.
//
// Recording happens from sequential driver code (stage epilogues), so a
// plain mutex-guarded registry suffices.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace autoncs::util {

/// Current resident set size in bytes (VmRSS), or 0 where unsupported.
std::size_t current_rss_bytes();

/// Peak resident set size in bytes (VmHWM), or 0 where unsupported.
std::size_t peak_rss_bytes();

/// One stage-boundary RSS sample, in call order.
struct MemStageSample {
  std::string stage;
  std::size_t current_rss_bytes = 0;
  std::size_t peak_rss_bytes = 0;
};

/// One instrumented structure footprint (last write per name wins).
struct MemStructure {
  std::string name;
  double bytes = 0.0;
};

/// Everything collected by a memory-accounting session.
struct MemSnapshot {
  std::vector<MemStageSample> stages;
  std::vector<MemStructure> structures;
  /// Peak RSS at snapshot time (manifest convenience; 0 if unsupported).
  std::size_t peak_rss_bytes = 0;
};

namespace mem_detail {
extern std::atomic<bool> g_enabled;
}

/// True while memory accounting is collecting.
inline bool mem_accounting_enabled() {
  return mem_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Clears the registry and starts collecting (idempotent).
void start_mem_accounting();

/// Copies everything recorded so far (plus the peak RSS right now).
MemSnapshot mem_snapshot();

/// Stops collecting and clears the registry.
void stop_mem_accounting();

/// Records a stage-boundary RSS sample. No-op while disabled.
void mem_stage_sample(const std::string& stage);

/// Records the logical footprint of one named structure. When
/// `deterministic` is set (the size is bit-identical across thread
/// counts) the value is also emitted as a "mem/<name>_bytes" metric
/// gauge, picking up the active flow prefix. No-op while disabled
/// (metrics emission is still gated on metrics_enabled separately).
void mem_record_bytes(const std::string& name, double bytes,
                      bool deterministic);

/// sizeof-based logical footprint of a vector-like container's elements.
template <typename Container>
double container_bytes(const Container& c) {
  return static_cast<double>(c.size()) *
         static_cast<double>(sizeof(typename Container::value_type));
}

}  // namespace autoncs::util
