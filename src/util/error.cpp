#include "util/error.hpp"

#include <sstream>

namespace autoncs::util {

const char* error_category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kInput: return "input";
    case ErrorCategory::kNumerical: return "numerical";
    case ErrorCategory::kResource: return "resource";
    case ErrorCategory::kInternal: return "internal";
  }
  return "internal";
}

int exit_code_for(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kInput: return 2;
    case ErrorCategory::kNumerical: return 3;
    case ErrorCategory::kResource: return 4;
    case ErrorCategory::kInternal: return 5;
  }
  return 5;
}

namespace {

std::string format_message(ErrorCategory category, const std::string& code,
                           const std::string& stage,
                           const std::string& message) {
  std::ostringstream oss;
  oss << error_category_name(category) << " error [" << code << "] in "
      << stage << ": " << message;
  return oss.str();
}

}  // namespace

FlowError::FlowError(ErrorCategory category, std::string code,
                     std::string stage, const std::string& message)
    : std::runtime_error(format_message(category, code, stage, message)),
      category_(category),
      code_(std::move(code)),
      stage_(std::move(stage)) {}

bool RecoveryLog::degraded() const {
  for (const auto& event : events_) {
    if (!event.recovered || event.alters_result) return true;
  }
  return false;
}

std::string RecoveryLog::first_degraded_code() const {
  for (const auto& event : events_) {
    if (!event.recovered || event.alters_result) return event.point;
  }
  return {};
}

void RecoveryLog::merge(const RecoveryLog& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

}  // namespace autoncs::util
