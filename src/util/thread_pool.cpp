#include "util/thread_pool.hpp"

#include "util/check.hpp"

namespace autoncs::util {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : worker_count_(resolve_thread_count(threads)) {
  threads_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::chunk_bounds(std::size_t count, std::size_t chunk,
                              std::size_t chunks, std::size_t* begin,
                              std::size_t* end) {
  AUTONCS_CHECK(chunks > 0 && chunk < chunks, "chunk index out of range");
  *begin = chunk * count / chunks;
  *end = (chunk + 1) * count / chunks;
}

void ThreadPool::run_chunk(const RangeFn& fn, std::size_t count,
                           std::size_t worker) {
  std::size_t begin = 0;
  std::size_t end = 0;
  chunk_bounds(count, worker, worker_count_, &begin, &end);
  if (begin >= end) return;
  try {
    fn(begin, end, worker);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::parallel_for(std::size_t count, const RangeFn& fn) {
  if (count == 0) return;
  if (worker_count_ == 1) {
    fn(0, count, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    running_ = threads_.size();
    error_ = nullptr;
    ++job_id_;
  }
  start_cv_.notify_all();
  run_chunk(fn, count, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const RangeFn* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      job = job_;
      count = job_count_;
    }
    run_chunk(*job, count, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace autoncs::util
