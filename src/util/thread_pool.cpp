#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"
#include "util/trace.hpp"

namespace autoncs::util {

namespace pool_detail {
std::atomic<bool> g_stats_enabled{false};
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Per-label accumulator. Leaked so pools destroyed during static
/// teardown can still flush.
struct PoolRegistry {
  std::mutex mutex;
  std::vector<PoolStats> entries;
};

PoolRegistry& pool_registry() {
  static PoolRegistry* r = new PoolRegistry();
  return *r;
}

/// Buckets a relative spread in [0, 1] into the imbalance histogram.
std::size_t imbalance_bucket(double spread) {
  if (spread < 0.05) return 0;
  if (spread < 0.10) return 1;
  if (spread < 0.25) return 2;
  if (spread < 0.50) return 3;
  return 4;
}

}  // namespace

void start_pool_stats() {
  PoolRegistry& r = pool_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.entries.clear();
  pool_detail::g_stats_enabled.store(true, std::memory_order_release);
}

std::vector<PoolStats> pool_stats_snapshot() {
  PoolRegistry& r = pool_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<PoolStats> out = r.entries;
  std::sort(out.begin(), out.end(),
            [](const PoolStats& a, const PoolStats& b) {
              return a.label < b.label;
            });
  return out;
}

std::vector<PoolStats> stop_pool_stats() {
  pool_detail::g_stats_enabled.store(false, std::memory_order_release);
  PoolRegistry& r = pool_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<PoolStats> out = std::move(r.entries);
  r.entries.clear();
  std::sort(out.begin(), out.end(),
            [](const PoolStats& a, const PoolStats& b) {
              return a.label < b.label;
            });
  return out;
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("AUTONCS_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
    // A malformed override falls through to hardware detection rather
    // than silently serializing the flow.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads, const char* label)
    : worker_count_(resolve_thread_count(threads)),
      label_(label),
      born_(Clock::now()) {
  threads_.reserve(worker_count_ - 1);
  slots_.reserve(worker_count_ - 1);
  counters_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    slots_.emplace_back(std::make_unique<WorkerSlot>());
    counters_.emplace_back(std::make_unique<WorkerCounters>());
  }
  job_busy_ns_.assign(worker_count_, 0);
  job_blocks_run_.assign(worker_count_, 0);
  stat_busy_ns_.assign(worker_count_, 0);
  stat_blocks_run_.assign(worker_count_, 0);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  for (auto& slot : slots_) {
    // Taking the slot mutex around the notify guarantees the worker is
    // either parked (and sees the wakeup) or about to re-check stop_.
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->cv.notify_one();
  }
  for (auto& thread : threads_) thread.join();
  if (label_ != nullptr && pool_stats_enabled()) flush_stats();
}

void ThreadPool::flush_stats() {
  // The workers have joined, so every counter is quiescent.
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  for (const auto& c : counters_) {
    parks += c->parks.load(std::memory_order_relaxed);
    wakes += c->wakes.load(std::memory_order_relaxed);
  }
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           born_)
          .count());
  PoolRegistry& r = pool_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  PoolStats* entry = nullptr;
  for (PoolStats& e : r.entries) {
    if (e.label == label_) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    r.entries.emplace_back();
    entry = &r.entries.back();
    entry->label = label_;
  }
  entry->workers = std::max(entry->workers, worker_count_);
  entry->pools += 1;
  entry->dispatches += stat_dispatches_;
  entry->inline_runs += stat_inline_runs_;
  entry->items += stat_items_;
  entry->blocks += stat_blocks_;
  entry->parks += parks;
  entry->wakes += wakes;
  entry->wall_ns += wall_ns;
  if (entry->busy_ns.size() < worker_count_) {
    entry->busy_ns.resize(worker_count_, 0);
    entry->blocks_run.resize(worker_count_, 0);
  }
  for (std::size_t w = 0; w < worker_count_; ++w) {
    entry->busy_ns[w] += stat_busy_ns_[w];
    entry->blocks_run[w] += stat_blocks_run_[w];
  }
  for (std::size_t b = 0; b < entry->imbalance.size(); ++b) {
    entry->imbalance[b] += stat_imbalance_[b];
  }
}

void ThreadPool::chunk_bounds(std::size_t count, std::size_t chunk,
                              std::size_t chunks, std::size_t* begin,
                              std::size_t* end) {
  AUTONCS_CHECK(chunks > 0 && chunk < chunks, "chunk index out of range");
  *begin = chunk * count / chunks;
  *end = (chunk + 1) * count / chunks;
}

void ThreadPool::run_blocks(std::size_t worker) {
  const std::uint64_t t0 = job_stats_ ? now_ns() : 0;
  std::uint64_t executed = 0;
  try {
    // Blocks this worker owns under the fixed grid — the trace argument
    // that makes uneven grids visible per worker lane in Perfetto.
    const std::size_t owned =
        job_blocks_ > worker
            ? (job_blocks_ - worker + job_active_ - 1) / job_active_
            : 0;
    TraceSpan span("pool/run", "blocks", static_cast<std::int64_t>(owned));
    for (std::size_t b = worker; b < job_blocks_; b += job_active_) {
      const std::size_t begin = b * job_grain_;
      const std::size_t end = std::min(begin + job_grain_, job_count_);
      (*job_)(begin, end, worker);
      ++executed;
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  }
  if (job_stats_) {
    job_busy_ns_[worker] = now_ns() - t0;
    job_blocks_run_[worker] = executed;
  }
}

void ThreadPool::parallel_for(std::size_t count, const RangeFn& fn,
                              std::size_t grain) {
  if (count == 0) return;
  std::size_t g = grain;
  if (g == 0) g = (count + worker_count_ - 1) / worker_count_;
  if (g == 0) g = 1;
  const std::size_t blocks = (count + g - 1) / g;
  const std::size_t active = std::min(worker_count_, blocks);
  const bool stats = label_ != nullptr && pool_stats_enabled();
  if (active <= 1) {
    // The whole range fits one block (or there is one worker): stay on
    // the calling thread — no wakeups, no synchronization. Inline runs
    // still count as dispatches (inline_runs is the subset of dispatches
    // that never touched the workers).
    if (stats) {
      ++stat_dispatches_;
      ++stat_inline_runs_;
      stat_items_ += count;
    }
    fn(0, count, 0);
    return;
  }

  job_ = &fn;
  job_count_ = count;
  job_grain_ = g;
  job_blocks_ = blocks;
  job_active_ = active;
  job_stats_ = stats;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    remaining_ = active - 1;
  }
  ++job_id_;
  {
    // Wake exactly the workers that own blocks; the rest stay parked. The
    // slot mutex hand-off publishes the job fields written above. The
    // dispatch span covers the wakeups plus the caller's own share of the
    // blocks; the drain span is the time spent waiting for stragglers.
    TraceSpan dispatch_span("pool/dispatch", "items",
                            static_cast<std::int64_t>(count));
    for (std::size_t w = 1; w < active; ++w) {
      WorkerSlot& slot = *slots_[w - 1];
      {
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.job = job_id_;
      }
      slot.cv.notify_one();
    }
    run_blocks(0);
  }
  {
    TraceSpan drain_span("pool/drain");
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
  }
  if (stats) {
    ++stat_dispatches_;
    stat_items_ += count;
    std::uint64_t busy_min = job_busy_ns_[0];
    std::uint64_t busy_max = job_busy_ns_[0];
    for (std::size_t w = 0; w < active; ++w) {
      const std::uint64_t busy = job_busy_ns_[w];
      stat_busy_ns_[w] += busy;
      stat_blocks_run_[w] += job_blocks_run_[w];
      stat_blocks_ += job_blocks_run_[w];
      busy_min = std::min(busy_min, busy);
      busy_max = std::max(busy_max, busy);
    }
    if (busy_max > 0) {
      const double spread =
          static_cast<double>(busy_max - busy_min) /
          static_cast<double>(busy_max);
      ++stat_imbalance_[imbalance_bucket(spread)];
    }
  }
  job_ = nullptr;
  job_stats_ = false;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t worker) {
  WorkerSlot& slot = *slots_[worker - 1];
  WorkerCounters& counters = *counters_[worker - 1];
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(slot.mutex);
      while (!stop_.load() && slot.job == seen) {
        if (label_ != nullptr && pool_stats_enabled()) {
          counters.parks.fetch_add(1, std::memory_order_relaxed);
        }
        slot.cv.wait(lock);
      }
      if (stop_.load()) return;
      seen = slot.job;
    }
    if (job_stats_) counters.wakes.fetch_add(1, std::memory_order_relaxed);
    run_blocks(worker);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace autoncs::util
