#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace autoncs::util {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("AUTONCS_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
    // A malformed override falls through to hardware detection rather
    // than silently serializing the flow.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : worker_count_(resolve_thread_count(threads)) {
  threads_.reserve(worker_count_ - 1);
  slots_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    slots_.emplace_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t w = 1; w < worker_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  for (auto& slot : slots_) {
    // Taking the slot mutex around the notify guarantees the worker is
    // either parked (and sees the wakeup) or about to re-check stop_.
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->cv.notify_one();
  }
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::chunk_bounds(std::size_t count, std::size_t chunk,
                              std::size_t chunks, std::size_t* begin,
                              std::size_t* end) {
  AUTONCS_CHECK(chunks > 0 && chunk < chunks, "chunk index out of range");
  *begin = chunk * count / chunks;
  *end = (chunk + 1) * count / chunks;
}

void ThreadPool::run_blocks(std::size_t worker) {
  try {
    for (std::size_t b = worker; b < job_blocks_; b += job_active_) {
      const std::size_t begin = b * job_grain_;
      const std::size_t end = std::min(begin + job_grain_, job_count_);
      (*job_)(begin, end, worker);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::parallel_for(std::size_t count, const RangeFn& fn,
                              std::size_t grain) {
  if (count == 0) return;
  std::size_t g = grain;
  if (g == 0) g = (count + worker_count_ - 1) / worker_count_;
  if (g == 0) g = 1;
  const std::size_t blocks = (count + g - 1) / g;
  const std::size_t active = std::min(worker_count_, blocks);
  if (active <= 1) {
    // The whole range fits one block (or there is one worker): stay on
    // the calling thread — no wakeups, no synchronization.
    fn(0, count, 0);
    return;
  }

  job_ = &fn;
  job_count_ = count;
  job_grain_ = g;
  job_blocks_ = blocks;
  job_active_ = active;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    remaining_ = active - 1;
  }
  ++job_id_;
  // Wake exactly the workers that own blocks; the rest stay parked. The
  // slot mutex hand-off publishes the job fields written above.
  for (std::size_t w = 1; w < active; ++w) {
    WorkerSlot& slot = *slots_[w - 1];
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      slot.job = job_id_;
    }
    slot.cv.notify_one();
  }
  run_blocks(0);
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
  }
  job_ = nullptr;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t worker) {
  WorkerSlot& slot = *slots_[worker - 1];
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(slot.mutex);
      slot.cv.wait(lock,
                   [&] { return stop_.load() || slot.job != seen; });
      if (stop_.load()) return;
      seen = slot.job;
    }
    run_blocks(worker);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace autoncs::util
