// Deterministic fault injection.
//
// Named injection points are compiled into the flow at the places a
// production run can genuinely fail (solver non-convergence, NaN escaping
// a model, router overflow, allocation failure). Disarmed — the default —
// a point costs one relaxed atomic load and a never-taken branch, so clean
// runs are bit-identical and benchmark-neutral. Armed, a point "fires" on
// a deterministic hit schedule, letting tests/fault/ walk every rung of
// the recovery ladder without depending on timing, threads, or luck.
//
// Arming specs (comma separated, via fault_arm(), the CLI --fault flag, or
// the AUTONCS_FAULT environment variable read at process start):
//
//   point          fire on the first hit only (one-shot, the default)
//   point@N        fire on the first N hits
//   point@*        fire on every hit
//
// Points MUST sit in sequential code (stage entry, commit loops) — never
// inside a parallel region — so the hit order, and therefore the fire
// schedule, is deterministic. fault_point_catalog() is the authoritative
// list; arming an unknown point name throws InputError, which keeps the
// catalog and the call sites from drifting apart.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autoncs::util {

/// True when any injection point is armed. Single relaxed atomic load —
/// this is the only cost a disarmed build pays at an injection point.
bool fault_enabled();

/// Hit accounting + fire decision for one injection point. Call through
/// AUTONCS_FAULT_POINT, never directly (the macro short-circuits the
/// disarmed case before this function is reached).
bool fault_should_fire(const char* point);

/// Arms points from a spec ("a,b@3,c@*"). Throws InputError on an unknown
/// point name or malformed count. Specs accumulate; re-arming a point
/// replaces its schedule.
void fault_arm(const std::string& spec);

/// Disarms every point and resets all hit/fire counters.
void fault_disarm_all();

/// Fires so far for `point` (armed or not; 0 when never armed).
std::size_t fault_fire_count(const std::string& point);

/// Times `point` was reached while armed.
std::size_t fault_hit_count(const std::string& point);

/// Every injection point compiled into the flow, sorted. tests/fault
/// iterates this to prove each rung of the ladder is exercised.
const std::vector<std::string>& fault_point_catalog();

}  // namespace autoncs::util

/// Evaluates to true when the named fault point should fire. Disarmed this
/// is one relaxed atomic load and a never-taken branch.
#define AUTONCS_FAULT_POINT(name)       \
  (::autoncs::util::fault_enabled() &&  \
   ::autoncs::util::fault_should_fire(name))
