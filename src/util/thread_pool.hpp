// Deterministic fixed-size thread pool.
//
// The pool partitions an index range [0, count) into a FIXED BLOCK GRID:
// block b covers [b * grain, min((b + 1) * grain, count)), so the block
// boundaries depend only on (count, grain) — never on the worker count or
// on scheduling. Worker w runs blocks w, w + A, w + 2A, ... where A is the
// number of active workers, so any per-item computation that does not
// share mutable state is reproducible run to run and across thread
// counts. Callers that need results independent of the THREAD COUNT as
// well (the router and placer hot paths) arrange their algorithms so each
// item's output is computed independently and reduced in a fixed order
// afterwards.
//
// Dispatch is cheap by construction: workers park on per-worker slots, so
// a job only wakes the workers that actually own blocks; a range that
// fits a single block runs inline on the calling thread with no
// cross-thread traffic at all. Pass a `grain` sized so one block is worth
// a wakeup (tens of microseconds of work) and small inputs degrade to the
// plain sequential loop instead of paying the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace autoncs::util {

/// Maps a user-facing thread knob to a concrete worker count: 0 means
/// "auto" — the AUTONCS_THREADS environment variable when set to a
/// positive integer (the escape hatch for CI and cgroup limits, where
/// hardware_concurrency() often misreports), otherwise the hardware
/// concurrency (at least 1). An explicit nonzero request is used as given.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// fn(begin, end, worker): process items [begin, end) on worker `worker`.
  /// A worker may invoke fn several times (once per block it owns); the
  /// ranges it receives are disjoint but not necessarily contiguous.
  using RangeFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Spawns `threads - 1` workers (the caller participates as worker 0);
  /// 0 resolves via resolve_thread_count.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (>= 1).
  std::size_t size() const { return worker_count_; }

  /// Runs fn over [0, count) split into fixed blocks of `grain` indices
  /// (the last block may be short); blocks until every block finished.
  /// Worker w owns blocks w, w + A, w + 2A, ... with
  /// A = min(size(), blocks) active workers — workers without blocks are
  /// never woken, and a single-block range runs inline on the caller.
  /// `grain == 0` (the default) derives one block per worker, the legacy
  /// contiguous partition. The first exception thrown by any block is
  /// rethrown on the calling thread. Not reentrant.
  void parallel_for(std::size_t count, const RangeFn& fn,
                    std::size_t grain = 0);

  /// Chunk `chunk` of `chunks` over [0, count): [begin, end). Contiguous,
  /// covers the range exactly, sizes differ by at most one.
  static void chunk_bounds(std::size_t count, std::size_t chunk,
                           std::size_t chunks, std::size_t* begin,
                           std::size_t* end);

 private:
  /// Parking slot owned by one spawned worker: the worker sleeps on its
  /// own condition variable, so dispatching a job wakes exactly the
  /// workers that participate in it.
  struct WorkerSlot {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t job = 0;
  };

  void worker_loop(std::size_t worker);
  /// Runs every block owned by `worker` under the current job, capturing
  /// the first exception.
  void run_blocks(std::size_t worker);

  std::size_t worker_count_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::atomic<bool> stop_{false};

  // Current job. Written by the caller before any slot is signalled; the
  // per-slot mutex hand-off publishes them to the workers.
  const RangeFn* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_grain_ = 0;
  std::size_t job_blocks_ = 0;
  std::size_t job_active_ = 0;
  std::uint64_t job_id_ = 0;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t remaining_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace autoncs::util
