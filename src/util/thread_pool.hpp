// Deterministic fixed-size thread pool.
//
// The pool statically partitions an index range [0, count) into size()
// contiguous chunks — chunk w runs on worker w, with worker 0 being the
// calling thread. The partition depends only on (count, size()), never on
// scheduling, so any per-item computation that does not share mutable
// state is reproducible run to run. Callers that need results independent
// of the THREAD COUNT as well (the router and placer hot paths) arrange
// their algorithms so each item's output is computed independently and
// reduced in a fixed sequential order afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autoncs::util {

/// Maps a user-facing thread knob to a concrete worker count: 0 means
/// "hardware concurrency" (at least 1), anything else is used as given.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// fn(begin, end, worker): process items [begin, end) on worker `worker`.
  using RangeFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Spawns `threads - 1` workers (the caller participates as worker 0);
  /// 0 resolves to the hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (>= 1).
  std::size_t size() const { return worker_count_; }

  /// Runs fn over [0, count) split into size() contiguous chunks; blocks
  /// until every chunk finished. The first exception thrown by any chunk
  /// is rethrown on the calling thread. Not reentrant.
  void parallel_for(std::size_t count, const RangeFn& fn);

  /// Chunk `chunk` of `chunks` over [0, count): [begin, end). Contiguous,
  /// covers the range exactly, sizes differ by at most one.
  static void chunk_bounds(std::size_t count, std::size_t chunk,
                           std::size_t chunks, std::size_t* begin,
                           std::size_t* end);

 private:
  void worker_loop(std::size_t worker);
  void run_chunk(const RangeFn& fn, std::size_t count, std::size_t worker);

  std::size_t worker_count_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const RangeFn* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t job_id_ = 0;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace autoncs::util
