// Deterministic fixed-size thread pool.
//
// The pool partitions an index range [0, count) into a FIXED BLOCK GRID:
// block b covers [b * grain, min((b + 1) * grain, count)), so the block
// boundaries depend only on (count, grain) — never on the worker count or
// on scheduling. Worker w runs blocks w, w + A, w + 2A, ... where A is the
// number of active workers, so any per-item computation that does not
// share mutable state is reproducible run to run and across thread
// counts. Callers that need results independent of the THREAD COUNT as
// well (the router and placer hot paths) arrange their algorithms so each
// item's output is computed independently and reduced in a fixed order
// afterwards.
//
// Dispatch is cheap by construction: workers park on per-worker slots, so
// a job only wakes the workers that actually own blocks; a range that
// fits a single block runs inline on the calling thread with no
// cross-thread traffic at all. Pass a `grain` sized so one block is worth
// a wakeup (tens of microseconds of work) and small inputs degrade to the
// plain sequential loop instead of paying the pool.
//
// Scheduler telemetry (docs/observability.md): a pool constructed with a
// label records, while pool stats are enabled, per-worker busy time,
// park/wake counts, blocks executed, inline runs, and a per-dispatch
// block-grid imbalance histogram. The counters follow the trace layer's
// passivity contract — nothing in the flow reads them, disabled cost is
// one relaxed atomic load per dispatch, and they are aggregated into a
// process-wide per-label registry only at pool destruction, then exported
// by the telemetry session into the run manifest.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace autoncs::util {

/// Aggregated scheduler statistics of every pool constructed under one
/// label while pool stats were enabled. Purely observational: wall-clock
/// quantities in here go to the run manifest only, never into metrics
/// (they are not thread-count invariant).
struct PoolStats {
  std::string label;
  /// Widest worker count seen under this label.
  std::size_t workers = 0;
  /// Pools constructed (and destroyed) under this label.
  std::uint64_t pools = 0;
  /// parallel_for calls that dispatched blocks to parked workers.
  std::uint64_t dispatches = 0;
  /// parallel_for calls served inline on the calling thread.
  std::uint64_t inline_runs = 0;
  /// Indices covered by dispatched (non-inline) jobs.
  std::uint64_t items = 0;
  /// Blocks executed across all workers of dispatched jobs.
  std::uint64_t blocks = 0;
  /// Times a worker went to sleep on its parking slot.
  std::uint64_t parks = 0;
  /// Jobs received by previously parked workers.
  std::uint64_t wakes = 0;
  /// Summed pool lifetimes (construction to destruction).
  std::uint64_t wall_ns = 0;
  /// Per-worker time spent inside dispatched jobs (worker 0 = caller).
  std::vector<std::uint64_t> busy_ns;
  /// Per-worker blocks executed.
  std::vector<std::uint64_t> blocks_run;
  /// Per-dispatch relative busy-time spread (max - min) / max across the
  /// participating workers: buckets < 5%, < 10%, < 25%, < 50%, >= 50%.
  std::array<std::uint64_t, 5> imbalance{};
};

namespace pool_detail {
extern std::atomic<bool> g_stats_enabled;
}

/// True while pool statistics are collected. Relaxed load — safe and
/// cheap from any thread.
inline bool pool_stats_enabled() {
  return pool_detail::g_stats_enabled.load(std::memory_order_relaxed);
}

/// Clears the per-label registry and starts collecting (idempotent).
void start_pool_stats();

/// Copies the registry so far, sorted by label. Pools still alive have
/// not flushed yet — stats land in the registry at pool destruction.
std::vector<PoolStats> pool_stats_snapshot();

/// Stops collecting and returns (moving out) everything recorded.
std::vector<PoolStats> stop_pool_stats();

/// Maps a user-facing thread knob to a concrete worker count: 0 means
/// "auto" — the AUTONCS_THREADS environment variable when set to a
/// positive integer (the escape hatch for CI and cgroup limits, where
/// hardware_concurrency() often misreports), otherwise the hardware
/// concurrency (at least 1). An explicit nonzero request is used as given.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// fn(begin, end, worker): process items [begin, end) on worker `worker`.
  /// A worker may invoke fn several times (once per block it owns); the
  /// ranges it receives are disjoint but not necessarily contiguous.
  using RangeFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Spawns `threads - 1` workers (the caller participates as worker 0);
  /// 0 resolves via resolve_thread_count. `label` names the pool in the
  /// scheduler-telemetry registry ("place", "route", ...); it must be a
  /// string literal or otherwise outlive the pool. nullptr opts out of
  /// stats collection entirely.
  explicit ThreadPool(std::size_t threads = 0, const char* label = nullptr);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (>= 1).
  std::size_t size() const { return worker_count_; }

  /// Runs fn over [0, count) split into fixed blocks of `grain` indices
  /// (the last block may be short); blocks until every block finished.
  /// Worker w owns blocks w, w + A, w + 2A, ... with
  /// A = min(size(), blocks) active workers — workers without blocks are
  /// never woken, and a single-block range runs inline on the caller.
  /// `grain == 0` (the default) derives one block per worker, the legacy
  /// contiguous partition. The first exception thrown by any block is
  /// rethrown on the calling thread. Not reentrant.
  void parallel_for(std::size_t count, const RangeFn& fn,
                    std::size_t grain = 0);

  /// Chunk `chunk` of `chunks` over [0, count): [begin, end). Contiguous,
  /// covers the range exactly, sizes differ by at most one.
  static void chunk_bounds(std::size_t count, std::size_t chunk,
                           std::size_t chunks, std::size_t* begin,
                           std::size_t* end);

 private:
  /// Parking slot owned by one spawned worker: the worker sleeps on its
  /// own condition variable, so dispatching a job wakes exactly the
  /// workers that participate in it.
  struct WorkerSlot {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t job = 0;
  };

  /// Park/wake counters of one spawned worker, written with relaxed
  /// atomics from the worker thread and read only at pool destruction.
  /// Cache-line padded so neighbouring workers never share a line.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> wakes{0};
  };

  void worker_loop(std::size_t worker);
  /// Runs every block owned by `worker` under the current job, capturing
  /// the first exception.
  void run_blocks(std::size_t worker);
  /// Merges this pool's counters into the per-label registry.
  void flush_stats();

  std::size_t worker_count_;
  const char* label_;
  std::chrono::steady_clock::time_point born_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  std::atomic<bool> stop_{false};

  // Current job. Written by the caller before any slot is signalled; the
  // per-slot mutex hand-off publishes them to the workers.
  const RangeFn* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_grain_ = 0;
  std::size_t job_blocks_ = 0;
  std::size_t job_active_ = 0;
  std::uint64_t job_id_ = 0;
  /// Whether the current job collects stats — latched by the caller at
  /// dispatch so workers see a consistent value for the whole job.
  bool job_stats_ = false;

  // Dispatch-level statistics. The per-job arrays are written by each
  // participating worker (its own slot only) and read by the caller after
  // the drain; the done_mutex_ hand-off orders those accesses. The
  // cumulative counters are touched by the calling thread alone.
  std::vector<std::uint64_t> job_busy_ns_;
  std::vector<std::uint64_t> job_blocks_run_;
  std::uint64_t stat_dispatches_ = 0;
  std::uint64_t stat_inline_runs_ = 0;
  std::uint64_t stat_items_ = 0;
  std::uint64_t stat_blocks_ = 0;
  std::vector<std::uint64_t> stat_busy_ns_;
  std::vector<std::uint64_t> stat_blocks_run_;
  std::array<std::uint64_t, 5> stat_imbalance_{};

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t remaining_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace autoncs::util
