#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

#include "util/flight.hpp"

namespace autoncs::util {

namespace {

/// The threshold is read on every call site, including from pool workers,
/// so it is atomic; the sink and the emission itself share one mutex.
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = default stderr sink

std::atomic<bool> g_timestamps{false};
std::atomic<bool> g_stage_context{false};
/// Static stage label set by the pipeline; nullptr between stages.
std::atomic<const char*> g_stage{nullptr};

/// "2026-08-07T12:34:56Z" (UTC). Returns empty on a clock failure.
std::string iso8601_now() {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  if (gmtime_s(&utc, &now) != 0) return {};
#else
  if (gmtime_r(&now, &utc) == nullptr) return {};
#endif
  char buffer[24];
  if (std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc) == 0)
    return {};
  return buffer;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == log_level_name(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void set_log_timestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

bool log_timestamps() {
  return g_timestamps.load(std::memory_order_relaxed);
}

void set_log_stage(const char* stage) {
  g_stage.store(stage, std::memory_order_relaxed);
}

const char* log_stage() { return g_stage.load(std::memory_order_relaxed); }

void set_log_stage_context(bool enabled) {
  g_stage_context.store(enabled, std::memory_order_relaxed);
}

bool log_stage_context() {
  return g_stage_context.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& tag, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Format outside the lock; dispatch atomically so lines from concurrent
  // stages (pool workers, parallel flows) never interleave mid-line.
  std::string line;
  line.reserve(tag.size() + message.size() + 16);
  if (g_timestamps.load(std::memory_order_relaxed)) {
    const std::string stamp = iso8601_now();
    if (!stamp.empty()) {
      line += stamp;
      line += ' ';
    }
  }
  line += '[';
  line += log_level_name(level);
  line += "] ";
  if (g_stage_context.load(std::memory_order_relaxed)) {
    if (const char* stage = g_stage.load(std::memory_order_relaxed)) {
      line += '(';
      line += stage;
      line += ") ";
    }
  }
  line += tag;
  line += ": ";
  line += message;
  if (flight_enabled()) flight_record_log(line.c_str());
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace autoncs::util
