#include "util/log.hpp"

#include <cstdio>

namespace autoncs::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag.c_str(), message.c_str());
}

}  // namespace autoncs::util
