#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace autoncs::util {

namespace {

/// The threshold is read on every call site, including from pool workers,
/// so it is atomic; the sink and the emission itself share one mutex.
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = default stderr sink

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == log_level_name(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& tag, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Format outside the lock; dispatch atomically so lines from concurrent
  // stages (pool workers, parallel flows) never interleave mid-line.
  std::string line;
  line.reserve(tag.size() + message.size() + 16);
  line += '[';
  line += log_level_name(level);
  line += "] ";
  line += tag;
  line += ": ";
  line += message;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace autoncs::util
