// Metrics registry: named counters, gauges, histograms and per-iteration
// series, populated by the flow stages and exported as JSONL.
//
// Design rules (the same passivity contract as the trace layer):
//
//  - Disabled (the default), every metric_* call is one relaxed atomic
//    load. Enabled, it takes the registry mutex — metrics are only emitted
//    from SEQUENTIAL driver code (per-iteration loops, commit phases),
//    never from inside parallel reductions, so the lock is uncontended.
//  - Metric values are derived from flow state that is itself
//    bit-identical across thread counts, and wall-clock never enters a
//    metric (timings live in the run manifest). The exported JSONL is
//    therefore byte-identical for --threads 1 and --threads N, which the
//    telemetry tests assert.
//  - Nothing reads metrics back into the flow, so outputs are identical
//    with metrics on or off.
//
// Naming convention (docs/observability.md): "<stage>/<quantity>", with an
// optional flow prefix ("autoncs/", "fullcro/") pushed by the pipeline so
// a CLI run that executes both flows keeps their series separate.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace autoncs::util {

namespace metrics_detail {
extern std::atomic<bool> g_enabled;
}

/// True while a metrics session is collecting.
inline bool metrics_enabled() {
  return metrics_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Everything collected by a session, in first-touch order (deterministic:
/// emission points are sequential code in fixed order).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    double value = 0.0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  /// Ordered (index, value) samples of one convergence series.
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> samples;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;
  std::vector<Series> series;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }
};

/// Clears the registry and starts collecting (idempotent).
void start_metrics();

/// Stops collecting and returns (moving out) everything recorded.
MetricsSnapshot stop_metrics();

/// Adds `delta` to the named monotonic counter.
void metric_count(const std::string& name, double delta = 1.0);

/// Sets the named gauge to `value` (last write wins).
void metric_gauge(const std::string& name, double value);

/// Folds `value` into the named histogram (count/sum/min/max).
void metric_observe(const std::string& name, double value);

/// Appends one (index, value) sample to the named series — the
/// per-iteration convergence traces.
void metric_sample(const std::string& name, double index, double value);

/// Pushes/pops a name prefix ("autoncs" -> names become "autoncs/...").
/// Used by the pipeline to scope one flow run; flows execute sequentially
/// on the calling thread, so a plain push/pop pair is sufficient.
void push_metric_prefix(const std::string& prefix);
void pop_metric_prefix();

/// RAII helper for push/pop_metric_prefix.
class MetricPrefix {
 public:
  explicit MetricPrefix(const std::string& prefix) {
    push_metric_prefix(prefix);
  }
  MetricPrefix(const MetricPrefix&) = delete;
  MetricPrefix& operator=(const MetricPrefix&) = delete;
  ~MetricPrefix() { pop_metric_prefix(); }
};

/// Renders a snapshot as JSONL: one JSON object per line —
///   {"type":"counter","name":...,"value":...}
///   {"type":"gauge","name":...,"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,"min":...,"max":...,"mean":...}
///   {"type":"sample","name":...,"index":...,"value":...}
/// Counters, gauges and histograms come first, then every series' samples
/// in order. Each line is independently parseable.
std::string metrics_jsonl(const MetricsSnapshot& snapshot);

}  // namespace autoncs::util
