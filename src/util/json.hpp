// Minimal JSON emission and validation shared by the telemetry layer
// (Chrome trace export, metrics JSONL, run manifests) and the bench
// harness JSON artifacts. Writing is string-building only — no DOM — and
// the validator is a strict RFC 8259 recognizer used by tests and tools to
// guarantee the emitted artifacts stay loadable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autoncs::util {

/// Escapes `text` for use inside a JSON string literal (quotes, backslash,
/// control characters). Does NOT add the surrounding quotes.
std::string json_escape(const std::string& text);

/// Formats a double as a JSON number token. Non-finite values (which JSON
/// cannot represent) are emitted as null. Round-trips exactly via %.17g.
std::string json_number(double value);

/// Incremental writer for nested objects/arrays. The caller is responsible
/// for balanced begin/end calls; keys are only legal inside objects. A
/// minimal state stack inserts commas automatically.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by exactly one value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);  // string value (escaped)
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(long long number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Shorthand: key(name) followed by value(v).
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  /// One frame per open container: true = expecting the first element.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Parser hardening knobs. Both parsers reject — never crash on — input
/// exceeding these bounds, so they are safe to point at adversarial data
/// (network requests, user-supplied files). The recursion depth of either
/// parser is bounded by max_depth, which keeps a deeply nested document
/// from overflowing the stack.
struct JsonLimits {
  /// Maximum container nesting depth. A document nested deeper is a parse
  /// error. Must be small enough that max_depth recursive frames fit the
  /// caller's stack (the historical default, 256, is conservative).
  std::size_t max_depth = 256;
  /// Maximum input size in bytes; 0 = unlimited. Checked before parsing,
  /// so an oversized document is rejected in O(1).
  std::size_t max_bytes = 0;
};

/// Strict JSON recognizer: true iff `text` is one complete, valid JSON
/// value (with optional surrounding whitespace) within `limits`. Used by
/// the telemetry tests to parse the emitted artifacts back.
bool json_valid(const std::string& text);
bool json_valid(const std::string& text, const JsonLimits& limits);

/// Minimal JSON DOM, the read-side counterpart of JsonWriter. Built for
/// loading back the artifacts this library writes (checkpoints, manifests):
/// numbers parse with strtod, so every %.17g double the writer emitted
/// round-trips bit-exactly, and object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  // array elements
  std::vector<std::pair<std::string, JsonValue>> members;  // object fields

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First member named `key`, or nullptr (also when not an object).
  const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON value (optional surrounding whitespace).
/// Returns false and leaves `out` unspecified on any syntax error; accepts
/// exactly the same language json_valid does, within the same limits.
bool json_parse(const std::string& text, JsonValue& out);
bool json_parse(const std::string& text, JsonValue& out,
                const JsonLimits& limits);

/// Writes `content` to `path`, returning false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace autoncs::util
