// Minimal leveled logger used by the long-running flow stages (ISC,
// placement, routing) to report progress. Output goes to stderr so that
// benches can pipe machine-readable results on stdout.
#pragma once

#include <sstream>
#include <string>

namespace autoncs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global verbosity threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] tag: message") if `level` passes the
/// threshold. Thread-compatible (single writer assumed).
void log_message(LogLevel level, const std::string& tag, const std::string& message);

/// Stream-style helper: LogLine(LogLevel::kInfo, "isc") << "iter " << i;
class LogLine {
 public:
  LogLine(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace autoncs::util
