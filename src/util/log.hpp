// Minimal leveled logger used by the long-running flow stages (ISC,
// placement, routing) to report progress. Output goes to stderr so that
// benches can pipe machine-readable results on stdout.
//
// Thread-safe: stages own thread pools, so lines are formatted into a
// single string first and emitted atomically under a mutex — concurrent
// writers can interleave LINES but never characters. The sink is
// pluggable (set_log_sink) so tests and tools can capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace autoncs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global verbosity threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Lowercase level name ("debug", ..., "off").
const char* log_level_name(LogLevel level);

/// Parses a level name; returns false (and leaves `out` untouched) on an
/// unknown name. Accepts exactly the strings log_level_name produces.
bool parse_log_level(const std::string& name, LogLevel* out);

/// Receives each formatted line (no trailing newline). Called under the
/// logger's mutex, so a sink needs no synchronization of its own.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Replaces the output sink; an empty function restores the default
/// stderr sink. Returns the previous sink so scoped captures can restore.
LogSink set_log_sink(LogSink sink);

/// When enabled, each line is prefixed with an ISO-8601 UTC timestamp
/// ("2026-08-07T12:34:56Z [info] ..."). Off by default so golden outputs
/// (and the determinism of captured logs) are unchanged; wall clock then
/// only appears when a user opts in (--log-timestamps).
void set_log_timestamps(bool enabled);
bool log_timestamps();

/// Current flow stage, shown as "(stage)" after the level when stage
/// context is enabled. The pipeline keeps this up to date (a static
/// string, or nullptr between flows) regardless of the display flag; the
/// flag (off by default) controls formatting only.
void set_log_stage(const char* stage);
const char* log_stage();
void set_log_stage_context(bool enabled);
bool log_stage_context();

/// Emits one formatted line ("[level] tag: message") if `level` passes the
/// threshold. Thread-safe: the line is dispatched to the sink atomically.
void log_message(LogLevel level, const std::string& tag, const std::string& message);

/// Stream-style helper: LogLine(LogLevel::kInfo, "isc") << "iter " << i;
class LogLine {
 public:
  LogLine(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace autoncs::util
