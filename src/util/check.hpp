// Precondition / invariant checking.
//
// AUTONCS_CHECK is always on (it guards API misuse with a descriptive
// exception, following the library-boundary error-handling idiom), while
// AUTONCS_DCHECK compiles away in release builds and is reserved for hot
// inner-loop invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace autoncs::util {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace autoncs::util

#define AUTONCS_CHECK(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::autoncs::util::check_failed(#expr, __FILE__, __LINE__, (message));  \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define AUTONCS_DCHECK(expr, message) \
  do {                                \
  } while (false)
#else
#define AUTONCS_DCHECK(expr, message) AUTONCS_CHECK(expr, message)
#endif
