// Physical netlist: mixed-size cells (neurons, crossbars, discrete
// synapses) connected by weighted wires.
//
// Sec. 3.5 of the paper explains why off-the-shelf placers don't fit:
// (1) wires carry different weights (RC criticality between memristors and
// crossbars), (2) cells are mixed-size, (3) cells need not align into rows.
// This model captures exactly that: free-floating rectangular cells with
// center coordinates and multi-pin wires with per-wire weights.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autoncs::netlist {

enum class CellKind { kNeuron, kCrossbar, kSynapse };

const char* cell_kind_name(CellKind kind);

struct Cell {
  CellKind kind = CellKind::kNeuron;
  double width = 0.0;   // um
  double height = 0.0;  // um
  double x = 0.0;       // center coordinate, um
  double y = 0.0;
  /// Index back into the source object (neuron id, crossbar index, or
  /// synapse index), for reporting.
  std::size_t source_index = 0;

  double area() const { return width * height; }
  double half_width() const { return 0.5 * width; }
  double half_height() const { return 0.5 * height; }
};

struct Wire {
  /// Cell indices this wire connects (pins at cell centers). All wires the
  /// builder produces are 2-pin, but the model allows multi-pin.
  std::vector<std::size_t> pins;
  /// RC-criticality weight (Sec. 3.5: higher-weight wires are shortened
  /// preferentially by the WA model and win routing tie-breaks).
  double weight = 1.0;
  /// Fixed delay of the device the wire terminates into (crossbar internal
  /// RC or discrete-synapse switching), added to the routed Elmore delay
  /// when computing the average wire delay T.
  double device_delay_ns = 0.0;
};

struct Netlist {
  std::vector<Cell> cells;
  std::vector<Wire> wires;

  double total_cell_area() const;
  std::size_t count_kind(CellKind kind) const;
  /// Validates pin indices; returns an empty string when consistent.
  std::string validate() const;
};

}  // namespace autoncs::netlist
