#include "netlist/netlist.hpp"

#include <sstream>

namespace autoncs::netlist {

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kNeuron: return "neuron";
    case CellKind::kCrossbar: return "crossbar";
    case CellKind::kSynapse: return "synapse";
  }
  return "?";
}

double Netlist::total_cell_area() const {
  double acc = 0.0;
  for (const auto& cell : cells) acc += cell.area();
  return acc;
}

std::size_t Netlist::count_kind(CellKind kind) const {
  std::size_t acc = 0;
  for (const auto& cell : cells)
    if (cell.kind == kind) ++acc;
  return acc;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (std::size_t w = 0; w < wires.size(); ++w) {
    if (wires[w].pins.size() < 2) {
      err << "wire #" << w << " has fewer than two pins";
      return err.str();
    }
    for (std::size_t pin : wires[w].pins) {
      if (pin >= cells.size()) {
        err << "wire #" << w << " references missing cell " << pin;
        return err.str();
      }
    }
    if (wires[w].weight <= 0.0) {
      err << "wire #" << w << " has non-positive weight";
      return err.str();
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].width <= 0.0 || cells[c].height <= 0.0) {
      err << "cell #" << c << " has non-positive dimensions";
      return err.str();
    }
  }
  return {};
}

}  // namespace autoncs::netlist
