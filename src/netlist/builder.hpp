// Builds the physical netlist of a hybrid mapping.
//
// Cells: one per neuron, one per crossbar instance, one per discrete
// synapse (its memristor), dimensioned by the technology model.
// Wires (all 2-pin):
//   - neuron -> crossbar for every crossbar row the neuron drives with at
//     least one realized connection,
//   - crossbar -> neuron for every used column,
//   - neuron -> synapse cell and synapse cell -> neuron for each discrete
//     synapse.
// Wire weights follow the paper's RC-criticality idea: a crossbar wire that
// carries many realized connections is more timing-critical, so its weight
// equals the number of connections it carries; discrete-synapse wires carry
// exactly one and get weight 1.
#pragma once

#include "mapping/hybrid_mapping.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_model.hpp"

namespace autoncs::netlist {

struct BuilderOptions {
  /// When true, all fanout wires of one neuron (to the crossbar rows it
  /// drives and the discrete synapses it feeds) merge into ONE multi-pin
  /// net — electrically accurate, since a neuron has a single output
  /// driver whose net branches to every sink. The default keeps the
  /// paper's implicit one-wire-per-(neuron, device) model. Input-side
  /// wires always stay 2-pin: every crossbar column / synapse output is
  /// its own driver.
  bool share_output_nets = false;
};

Netlist build_netlist(const mapping::HybridMapping& mapping,
                      const tech::TechnologyModel& tech = tech::default_tech(),
                      const BuilderOptions& options = {});

}  // namespace autoncs::netlist
