#include "netlist/builder.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/check.hpp"

namespace autoncs::netlist {

Netlist build_netlist(const mapping::HybridMapping& mapping,
                      const tech::TechnologyModel& tech,
                      const BuilderOptions& options) {
  Netlist net;
  net.cells.reserve(mapping.neuron_count + mapping.crossbars.size() +
                    mapping.discrete_synapses.size());

  // Neurons that participate in no realized connection are not part of the
  // physical NCS: a wire-less cell would only drift during placement and
  // inflate the die bounding box.
  std::vector<bool> active(mapping.neuron_count, false);
  for (const auto& xbar : mapping.crossbars) {
    for (const auto& c : xbar.connections) {
      active[c.from] = true;
      active[c.to] = true;
    }
  }
  for (const auto& c : mapping.discrete_synapses) {
    active[c.from] = true;
    active[c.to] = true;
  }

  // Neuron cells first; neuron_cell[v] maps a neuron id to its cell index.
  std::vector<std::size_t> neuron_cell(mapping.neuron_count,
                                       std::numeric_limits<std::size_t>::max());
  // share_output_nets: deferred fanout sinks per neuron.
  struct Sink {
    std::size_t cell;
    double load;
    double device_delay_ns;
  };
  std::map<std::size_t, std::vector<Sink>> output_sinks;
  for (std::size_t v = 0; v < mapping.neuron_count; ++v) {
    if (!active[v]) continue;
    Cell cell;
    cell.kind = CellKind::kNeuron;
    cell.width = tech.neuron_side_um;
    cell.height = tech.neuron_side_um;
    cell.source_index = v;
    neuron_cell[v] = net.cells.size();
    net.cells.push_back(cell);
  }

  for (std::size_t x = 0; x < mapping.crossbars.size(); ++x) {
    const auto& xbar = mapping.crossbars[x];
    Cell cell;
    cell.kind = CellKind::kCrossbar;
    cell.width = tech.crossbar_side_um(xbar.size);
    cell.height = cell.width;
    cell.source_index = x;
    const std::size_t xbar_cell = net.cells.size();
    net.cells.push_back(cell);

    // Count realized connections per used row / column: the wire weight.
    std::map<std::size_t, std::size_t> row_load;
    std::map<std::size_t, std::size_t> col_load;
    for (const auto& c : xbar.connections) {
      row_load[c.from] += 1;
      col_load[c.to] += 1;
    }
    const double xbar_delay = tech.crossbar_delay_ns(xbar.size);
    if (options.share_output_nets) {
      for (const auto& [neuron, load] : row_load) {
        AUTONCS_CHECK(neuron < mapping.neuron_count, "row neuron out of range");
        output_sinks[neuron].push_back(
            {xbar_cell, static_cast<double>(load), xbar_delay});
      }
    } else {
      for (const auto& [neuron, load] : row_load) {
        AUTONCS_CHECK(neuron < mapping.neuron_count, "row neuron out of range");
        net.wires.push_back(Wire{{neuron_cell[neuron], xbar_cell},
                                 static_cast<double>(load), xbar_delay});
      }
    }
    for (const auto& [neuron, load] : col_load) {
      AUTONCS_CHECK(neuron < mapping.neuron_count, "col neuron out of range");
      net.wires.push_back(Wire{{xbar_cell, neuron_cell[neuron]},
                               static_cast<double>(load), xbar_delay});
    }
  }

  for (std::size_t s = 0; s < mapping.discrete_synapses.size(); ++s) {
    const auto& synapse = mapping.discrete_synapses[s];
    AUTONCS_CHECK(synapse.from < mapping.neuron_count &&
                      synapse.to < mapping.neuron_count,
                  "synapse endpoint out of range");
    Cell cell;
    cell.kind = CellKind::kSynapse;
    cell.width = tech.synapse_side_um;
    cell.height = tech.synapse_side_um;
    cell.source_index = s;
    const std::size_t synapse_cell = net.cells.size();
    net.cells.push_back(cell);
    if (options.share_output_nets) {
      output_sinks[synapse.from].push_back(
          {synapse_cell, 1.0, tech.synapse_delay_ns});
    } else {
      net.wires.push_back(Wire{{neuron_cell[synapse.from], synapse_cell}, 1.0,
                               tech.synapse_delay_ns});
    }
    net.wires.push_back(Wire{{synapse_cell, neuron_cell[synapse.to]}, 1.0,
                             tech.synapse_delay_ns});
  }

  // Emit the merged output nets: pin 0 is the driving neuron, the rest are
  // its sinks; the weight is the net's total carried load and the device
  // delay the slowest attached device.
  for (const auto& [neuron, sinks] : output_sinks) {
    Wire wire;
    wire.pins.push_back(neuron_cell[neuron]);
    wire.weight = 0.0;
    wire.device_delay_ns = 0.0;
    for (const auto& sink : sinks) {
      wire.pins.push_back(sink.cell);
      wire.weight += sink.load;
      wire.device_delay_ns = std::max(wire.device_delay_ns, sink.device_delay_ns);
    }
    net.wires.push_back(std::move(wire));
  }

  return net;
}

}  // namespace autoncs::netlist
