// JSONL request/response protocol of the resident AutoNCS service
// (docs/service.md).
//
// Requests are one JSON object per line. The parser here is the daemon's
// armor against hostile clients: it enforces a byte cap and a nesting
// cap (util::JsonLimits) BEFORE any flow code sees the input, rejects
// unknown operations and unknown fields, and range-checks every numeric
// knob — a malformed request costs one typed error response, never a
// worker, never the daemon.
//
//   {"op":"flow","id":"j1","network":"net.ncsnet","seed":7,"max_size":16,
//    "threads":1,"deadline_ms":60000,"max_attempts":3,"fault":""}
//   {"op":"ping"}        {"op":"stats"}        {"op":"shutdown"}
//
// Responses echo the request id and carry a stable status:
//
//   status "ok"            completed flow (cost/degraded/resumed/attempts)
//   status "error"         typed FlowError taxonomy fields
//   status "rejected"      admission control (queue_full, shutting_down)
//                          or request validation (invalid_request)
//   status "pong"/"stats"/"shutting_down"   control-plane answers
#pragma once

#include <cstdint>
#include <string>

#include "tech/cost.hpp"
#include "util/json.hpp"

namespace autoncs::service {

/// Hardened request-side bounds (see util::JsonLimits). The service
/// reader additionally enforces max_request_bytes while buffering the
/// line, so an attacker cannot even make the daemon hold an oversized
/// request in memory.
struct RequestLimits {
  std::size_t max_request_bytes = 64 * 1024;
  std::size_t max_json_depth = 32;
};

enum class Op { kFlow, kPing, kStats, kShutdown };

/// One validated flow job request. Defaults mirror the CLI's.
struct JobRequest {
  Op op = Op::kFlow;
  /// Client-assigned id echoed in the response and used to key per-job
  /// artifacts; restricted to [A-Za-z0-9._-], 1..64 chars. Empty = the
  /// server assigns "job-<seq>".
  std::string id;
  /// Path to an ncsnet network file (flow ops only).
  std::string network;
  std::uint64_t seed = 2015;
  std::size_t max_size = 64;
  /// Worker threads for the flow's parallel stages (NOT the daemon's
  /// worker pool). Capped so one job cannot oversubscribe the host.
  std::size_t threads = 1;
  /// Per-job deadline in milliseconds; 0 = the server default.
  double deadline_ms = 0.0;
  /// Attempt cap for retryable failures; 0 = the server default.
  std::size_t max_attempts = 0;
  /// Deterministic fault spec armed for this job (testing only; the
  /// server rejects it unless started with allow_fault).
  std::string fault;
};

/// Outcome of parsing one request line.
struct ParseResult {
  bool ok = false;
  JobRequest request;
  /// Stable machine code when !ok: "invalid_request", "request_too_large".
  std::string error_code;
  std::string error_message;
};

/// Parses + validates one JSONL request line under `limits`. Never
/// throws; every rejection carries a typed code + human message.
ParseResult parse_request(const std::string& line,
                          const RequestLimits& limits);

/// Admission / load-shedding metrics, returned by the "stats" op and
/// carried by the server.
struct ServiceStats {
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::size_t jobs_ok = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_rejected_queue_full = 0;
  std::size_t jobs_rejected_shutting_down = 0;
  std::size_t requests_invalid = 0;
  std::size_t retries = 0;
  std::size_t deadline_cancelled = 0;
  std::size_t queue_depth = 0;
  std::size_t workers = 0;
  std::size_t network_cache_hits = 0;
  std::size_t network_cache_misses = 0;
  std::size_t threshold_cache_hits = 0;
  std::size_t threshold_cache_misses = 0;
};

/// One completed/failed job as the supervisor reports it (the service's
/// flow-facing result record; serialized by response_for_outcome).
struct JobOutcome {
  bool ok = false;
  tech::PhysicalCost cost;
  bool degraded = false;
  bool resumed = false;
  std::size_t attempts = 1;
  std::size_t recovery_events = 0;
  double run_ms = 0.0;
  /// FlowError taxonomy fields when !ok.
  std::string error_category;
  std::string error_code;
  std::string error_stage;
  std::string error_message;
};

// ---- response rendering (all single-line JSON, no trailing newline) ----

std::string response_ok(const std::string& id, const JobOutcome& outcome,
                        double queue_ms);
std::string response_error(const std::string& id, const JobOutcome& outcome,
                           double queue_ms);
/// `status` is "rejected" responses' detail code: "queue_full",
/// "shutting_down", "invalid_request", "request_too_large".
std::string response_rejected(const std::string& id, const std::string& code,
                              const std::string& message);
std::string response_pong();
std::string response_stats(const ServiceStats& stats);
std::string response_shutting_down();

}  // namespace autoncs::service
