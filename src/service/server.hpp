// Resident AutoNCS daemon (docs/service.md): a Unix-domain-socket JSONL
// server in front of the flow pipeline.
//
// Thread architecture — every piece is bounded and owned:
//
//   accept thread   poll()s the listening socket plus a self-pipe; the
//                   self-pipe byte is the drain signal (SIGTERM handler,
//                   shutdown op, request_drain()) and is the only
//                   async-signal-safe entry point into the server.
//   connection      one thread per client, reading newline-delimited
//   threads         requests under the hardened byte cap. Control ops
//                   (ping/stats/shutdown) answer inline; flow jobs go
//                   through the bounded queue (admission control: a full
//                   queue sheds with a typed "queue_full" rejection).
//   worker pool     N threads popping the queue and running jobs through
//                   the supervisor. A job failure of ANY kind costs only
//                   its typed response — workers never die.
//   watchdog        scans in-flight jobs and trips each job's cancel
//                   token once its deadline passes; the pipeline aborts
//                   at the next stage boundary with resource.deadline.
//
// Graceful drain: stop accepting, refuse new jobs (shutting_down), let
// workers finish everything already queued and respond, then tear down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "service/session_cache.hpp"
#include "service/supervisor.hpp"

namespace autoncs::service {

struct ServerOptions {
  /// Filesystem path the Unix domain socket binds to; an existing stale
  /// socket file is replaced.
  std::string socket_path;
  std::size_t workers = 2;
  /// Bounded queue capacity — the admission-control knob. Jobs beyond
  /// (workers in flight + queue_capacity queued) are shed.
  std::size_t queue_capacity = 8;
  RequestLimits limits{};
  SupervisorOptions supervisor{};
  /// Cached parsed networks (see SessionCache).
  std::size_t cache_networks = 16;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns accept/worker/watchdog threads. Throws
  /// util::InputError when the socket cannot be bound.
  void start();

  /// Requests a graceful drain (idempotent, thread-safe): stop accepting,
  /// finish queued jobs, answer in-flight clients, then shut down.
  void request_drain();

  /// Async-signal-safe drain trigger for a SIGTERM handler: a single
  /// write() to this fd requests the same graceful drain.
  int drain_fd() const;

  /// Blocks until a requested drain completes and every thread is joined.
  void wait();

  ServiceStats stats() const;
  const std::string& socket_path() const { return options_.socket_path; }

  /// Test hooks: freeze the worker pool between jobs so admission control
  /// can be exercised deterministically (fill the queue → queue_full).
  void pause_workers();
  void resume_workers();

 private:
  struct Connection;
  struct ActiveJob;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);
  void worker_loop();
  void watchdog_loop();
  void handle_line(const std::shared_ptr<Connection>& connection,
                   const std::string& line);

  ServerOptions options_;
  SessionCache cache_;
  JobQueue queue_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  std::atomic<std::size_t> next_seq_{1};

  std::mutex active_mutex_;
  std::condition_variable watchdog_cv_;
  std::vector<std::shared_ptr<ActiveJob>> active_jobs_;
  bool watchdog_stop_ = false;
};

}  // namespace autoncs::service
