#include "service/job_queue.hpp"

#include <utility>

namespace autoncs::service {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

PushResult JobQueue::push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || closed_) return PushResult::kDraining;
    if (jobs_.size() >= capacity_) return PushResult::kQueueFull;
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return PushResult::kAccepted;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] {
    return closed_ || draining_ || (!jobs_.empty() && !paused_);
  });
  if (jobs_.empty()) return std::nullopt;
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void JobQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = paused;
  }
  ready_.notify_all();
}

void JobQueue::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  ready_.notify_all();
}

std::deque<Job> JobQueue::close() {
  std::deque<Job> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    closed_ = true;
    abandoned.swap(jobs_);
  }
  ready_.notify_all();
  return abandoned;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

bool JobQueue::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

}  // namespace autoncs::service
