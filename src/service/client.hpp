// Minimal blocking JSONL client for the resident service (docs/service.md).
// Used by `autoncs submit` and the service tests; one request line out,
// one response line back, over the daemon's Unix domain socket.
#pragma once

#include <string>

namespace autoncs::service {

class Client {
 public:
  /// Connects to the daemon. Throws util::InputError when the socket is
  /// absent or refuses the connection.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (newline appended) and blocks for the next
  /// response line. `timeout_ms` caps the wait (0 = forever); on timeout
  /// or EOF throws util::ResourceError / util::InputError.
  std::string request(const std::string& line, double timeout_ms = 0.0);

  void send_line(const std::string& line);
  std::string read_line(double timeout_ms = 0.0);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace autoncs::service
