#include "service/protocol.hpp"

#include <cmath>

namespace autoncs::service {

namespace {

ParseResult reject(const std::string& code, const std::string& message) {
  ParseResult result;
  result.ok = false;
  result.error_code = code;
  result.error_message = message;
  return result;
}

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Non-negative integer field within [lo, hi]; absent keeps the default.
bool take_size(const util::JsonValue& doc, const char* key, std::size_t lo,
               std::size_t hi, std::size_t& out, std::string& why) {
  const util::JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number_value < 0.0 ||
      v->number_value != std::floor(v->number_value)) {
    why = std::string("field '") + key + "' must be a non-negative integer";
    return false;
  }
  const double value = v->number_value;
  if (value < static_cast<double>(lo) || value > static_cast<double>(hi)) {
    why = std::string("field '") + key + "' out of range";
    return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

ParseResult parse_request(const std::string& line,
                          const RequestLimits& limits) {
  if (line.size() > limits.max_request_bytes)
    return reject("request_too_large",
                  "request line exceeds max_request_bytes");
  util::JsonLimits json_limits;
  json_limits.max_depth = limits.max_json_depth;
  json_limits.max_bytes = limits.max_request_bytes;
  util::JsonValue doc;
  if (!util::json_parse(line, doc, json_limits))
    return reject("invalid_request", "request is not valid JSON (or "
                  "exceeds the nesting limit)");
  if (!doc.is_object())
    return reject("invalid_request", "request must be a JSON object");

  ParseResult result;
  JobRequest& request = result.request;

  const util::JsonValue* op = doc.find("op");
  if (op == nullptr || !op->is_string())
    return reject("invalid_request", "missing string field 'op'");
  if (op->string_value == "flow") request.op = Op::kFlow;
  else if (op->string_value == "ping") request.op = Op::kPing;
  else if (op->string_value == "stats") request.op = Op::kStats;
  else if (op->string_value == "shutdown") request.op = Op::kShutdown;
  else
    return reject("invalid_request",
                  "unknown op '" + op->string_value + "'");

  // Whitelist-validate every member: an unknown field is a protocol error,
  // not something to silently ignore — typos in knob names must not turn
  // into defaulted production jobs.
  for (const auto& [key, value] : doc.members) {
    (void)value;
    if (key != "op" && key != "id" && key != "network" && key != "seed" &&
        key != "max_size" && key != "threads" && key != "deadline_ms" &&
        key != "max_attempts" && key != "fault")
      return reject("invalid_request", "unknown field '" + key + "'");
  }

  if (const util::JsonValue* id = doc.find("id")) {
    if (!id->is_string() || !valid_id(id->string_value))
      return reject("invalid_request",
                    "field 'id' must match [A-Za-z0-9._-]{1,64}");
    request.id = id->string_value;
  }

  if (request.op != Op::kFlow) {
    // Control ops carry no flow fields.
    for (const char* key : {"network", "seed", "max_size", "threads",
                            "deadline_ms", "max_attempts", "fault"}) {
      if (doc.find(key) != nullptr)
        return reject("invalid_request",
                      std::string("field '") + key +
                          "' is only valid with op \"flow\"");
    }
    result.ok = true;
    return result;
  }

  const util::JsonValue* network = doc.find("network");
  if (network == nullptr || !network->is_string() ||
      network->string_value.empty() || network->string_value.size() > 4096)
    return reject("invalid_request",
                  "flow requests need a non-empty string field 'network' "
                  "(at most 4096 bytes)");
  request.network = network->string_value;

  std::string why;
  std::size_t seed = static_cast<std::size_t>(request.seed);
  if (!take_size(doc, "seed", 0, static_cast<std::size_t>(1) << 53, seed,
                 why) ||
      !take_size(doc, "max_size", 4, 1024, request.max_size, why) ||
      !take_size(doc, "threads", 1, 64, request.threads, why) ||
      !take_size(doc, "max_attempts", 1, 10, request.max_attempts, why))
    return reject("invalid_request", why);
  request.seed = static_cast<std::uint64_t>(seed);

  if (const util::JsonValue* deadline = doc.find("deadline_ms")) {
    if (!deadline->is_number() || !(deadline->number_value >= 0.0) ||
        deadline->number_value > 1e9)
      return reject("invalid_request",
                    "field 'deadline_ms' must be a number in [0, 1e9]");
    request.deadline_ms = deadline->number_value;
  }

  if (const util::JsonValue* fault = doc.find("fault")) {
    if (!fault->is_string() || fault->string_value.size() > 256)
      return reject("invalid_request",
                    "field 'fault' must be a string of at most 256 bytes");
    request.fault = fault->string_value;
  }

  result.ok = true;
  return result;
}

std::string response_ok(const std::string& id, const JobOutcome& outcome,
                        double queue_ms) {
  util::JsonWriter w;
  w.begin_object();
  w.field("id", id)
      .field("status", "ok")
      .field("degraded", outcome.degraded)
      .field("resumed", outcome.resumed)
      .field("attempts", outcome.attempts)
      .field("recovery_events", outcome.recovery_events)
      .field("queue_ms", queue_ms)
      .field("run_ms", outcome.run_ms);
  w.key("cost").begin_object();
  w.field("wirelength_um", outcome.cost.total_wirelength_um)
      .field("area_um2", outcome.cost.area_um2)
      .field("average_delay_ns", outcome.cost.average_delay_ns);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string response_error(const std::string& id, const JobOutcome& outcome,
                           double queue_ms) {
  util::JsonWriter w;
  w.begin_object();
  w.field("id", id)
      .field("status", "error")
      .field("attempts", outcome.attempts)
      .field("queue_ms", queue_ms)
      .field("run_ms", outcome.run_ms);
  w.key("error").begin_object();
  w.field("category", outcome.error_category)
      .field("code", outcome.error_code)
      .field("stage", outcome.error_stage)
      .field("message", outcome.error_message);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string response_rejected(const std::string& id, const std::string& code,
                              const std::string& message) {
  util::JsonWriter w;
  w.begin_object();
  if (!id.empty()) w.field("id", id);
  w.field("status", "rejected");
  w.key("error").begin_object();
  w.field("code", code).field("message", message);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string response_pong() {
  return "{\"status\":\"pong\"}";
}

std::string response_stats(const ServiceStats& stats) {
  util::JsonWriter w;
  w.begin_object();
  w.field("status", "stats")
      .field("connections", stats.connections)
      .field("requests", stats.requests)
      .field("jobs_ok", stats.jobs_ok)
      .field("jobs_failed", stats.jobs_failed)
      .field("jobs_rejected_queue_full", stats.jobs_rejected_queue_full)
      .field("jobs_rejected_shutting_down",
             stats.jobs_rejected_shutting_down)
      .field("requests_invalid", stats.requests_invalid)
      .field("retries", stats.retries)
      .field("deadline_cancelled", stats.deadline_cancelled)
      .field("queue_depth", stats.queue_depth)
      .field("workers", stats.workers)
      .field("network_cache_hits", stats.network_cache_hits)
      .field("network_cache_misses", stats.network_cache_misses)
      .field("threshold_cache_hits", stats.threshold_cache_hits)
      .field("threshold_cache_misses", stats.threshold_cache_misses);
  w.end_object();
  return w.str();
}

std::string response_shutting_down() {
  return "{\"status\":\"shutting_down\"}";
}

}  // namespace autoncs::service
