// Warm caches shared read-only across the daemon's jobs (docs/service.md).
//
// Two expensive per-job prefixes repeat verbatim under production traffic:
// parsing the network file and deriving the ISC stopping threshold from
// the FullCro baseline (a full baseline mapping of the network). Both are
// pure functions of (file content, max_size), so the cache shares them
// across jobs and invalidates by file identity (size + mtime) — a client
// overwriting net.ncsnet between jobs gets a fresh parse, never a stale
// mapping.
//
// Thread-safe behind one mutex; entries are handed out as shared_ptr so a
// running job keeps its network alive even if the LRU evicts the entry
// mid-flight. Bounded: at most `max_networks` parsed networks resident
// (LRU eviction), so hostile clients cycling thousands of files cannot
// grow the daemon without bound.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "nn/connection_matrix.hpp"

namespace autoncs::service {

struct CacheStats {
  std::size_t network_hits = 0;
  std::size_t network_misses = 0;
  std::size_t threshold_hits = 0;
  std::size_t threshold_misses = 0;
};

class SessionCache {
 public:
  explicit SessionCache(std::size_t max_networks = 16);

  /// Parsed network for `path`, shared across jobs. Re-reads when the
  /// file's (size, mtime) identity changed. Throws util::InputError (from
  /// the checked loader) on missing/malformed files — the supervisor maps
  /// that onto a typed job error.
  std::shared_ptr<const nn::ConnectionMatrix> network(
      const std::string& path);

  /// FullCro-baseline utilization threshold for (path's network,
  /// max_size), cached on the network's cache entry so it shares the
  /// invalidation rule. Computes on miss via
  /// mapping::fullcro_utilization_threshold.
  double baseline_threshold(const std::string& path, std::size_t max_size);

  CacheStats stats() const;

 private:
  struct Entry {
    std::uintmax_t file_size = 0;
    std::int64_t mtime_ns = 0;
    std::shared_ptr<const nn::ConnectionMatrix> network;
    std::map<std::size_t, double> thresholds;  // keyed by max_size
  };

  /// Loads-or-refreshes the entry for `path` under mutex_. Returns the
  /// map iterator (never end()).
  std::map<std::string, Entry>::iterator lookup(const std::string& path);
  void touch(const std::string& path);
  void evict_if_needed();

  const std::size_t max_networks_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace autoncs::service
