#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.hpp"

namespace autoncs::service {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw util::InputError("input.io", "service", "cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw util::InputError("input.io", "service",
                           "socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw util::InputError("input.io", "service",
                           "cannot connect to " + socket_path + ": " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::InputError("input.io", "service",
                             std::string("send failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line(double timeout_ms) {
  const double deadline = timeout_ms > 0.0 ? now_ms() + timeout_ms : 0.0;
  for (;;) {
    const std::size_t end = buffer_.find('\n');
    if (end != std::string::npos) {
      std::string line = buffer_.substr(0, end);
      buffer_.erase(0, end + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    int wait = -1;
    if (deadline > 0.0) {
      const double left = deadline - now_ms();
      if (left <= 0.0)
        throw util::ResourceError("resource.timeout", "service",
                                  "timed out waiting for a response line");
      wait = static_cast<int>(left) + 1;
    }
    pollfd fd{fd_, POLLIN, 0};
    const int ready = ::poll(&fd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw util::InputError("input.io", "service", "poll failed");
    }
    if (ready == 0) continue;  // re-check the deadline
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::InputError("input.io", "service",
                             std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0)
      throw util::InputError("input.io", "service",
                             "server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line, double timeout_ms) {
  send_line(line);
  return read_line(timeout_ms);
}

}  // namespace autoncs::service
