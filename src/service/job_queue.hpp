// Bounded admission queue of the resident service (docs/service.md).
//
// Backpressure contract: the queue NEVER grows past its capacity — a push
// against a full queue fails immediately (the server turns that into a
// typed "queue_full" rejection) instead of buffering unbounded work. The
// drain states implement graceful shutdown: `begin_drain` refuses new
// work but lets workers finish everything already queued; `close` wakes
// every blocked popper so worker threads can exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "service/protocol.hpp"

namespace autoncs::service {

/// One queued flow job: the validated request plus the response channel
/// (a connection-bound writer; safe to call from any worker thread, and a
/// no-op once the client disconnected) and the enqueue timestamp used to
/// report queue latency.
struct Job {
  JobRequest request;
  std::function<void(const std::string& line)> respond;
  double enqueued_ms = 0.0;  // steady-clock milliseconds (server epoch)
};

enum class PushResult { kAccepted, kQueueFull, kDraining };

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Non-blocking admission. kQueueFull sheds load; kDraining refuses
  /// work after begin_drain()/close().
  PushResult push(Job job);

  /// Blocks until a job is available, the queue is draining AND empty, or
  /// closed. nullopt = no more work will ever arrive (worker exits).
  std::optional<Job> pop();

  /// Stop admitting; queued jobs still drain through pop().
  void begin_drain();

  /// Test hook: while paused, pop() keeps blocking even with jobs queued,
  /// so admission control can be exercised deterministically (fill the
  /// queue → observe queue_full). Draining overrides pause, so a paused
  /// pool can never stall a graceful shutdown.
  void set_paused(bool paused);

  /// Stop admitting AND discard queued jobs, returning them so the caller
  /// can reject each one. Poppers wake and see nullopt once empty.
  std::deque<Job> close();

  std::size_t size() const;
  bool draining() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool draining_ = false;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace autoncs::service
