#include "service/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "autoncs/pipeline.hpp"
#include "autoncs/telemetry.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/flight.hpp"
#include "util/log.hpp"

namespace autoncs::service {

namespace {

/// Serializes fault-injected jobs against everything else. The fault
/// registry is process-global, so a job that arms a fault spec must not
/// overlap any other job: fault jobs take this exclusively, normal jobs
/// share it. Production daemons (allow_fault off) only ever take the
/// shared side, which is contention-free.
std::shared_mutex& fault_mutex() {
  static std::shared_mutex mutex;
  return mutex;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Retryable = transient by taxonomy: numerical failures (restart with the
/// checkpointed prefix intact) and resource exhaustion (pressure may have
/// passed). Deadline cancellations are Resource-category but pointless to
/// retry — the watchdog would cancel the retry too. Input and internal
/// failures are deterministic; retrying them just burns the budget.
bool retryable(const util::FlowError& error) {
  if (error.code() == "resource.deadline") return false;
  return error.category() == util::ErrorCategory::kNumerical ||
         error.category() == util::ErrorCategory::kResource;
}

void capture_error(JobOutcome& outcome, const util::FlowError& error) {
  outcome.ok = false;
  outcome.error_category = util::error_category_name(error.category());
  outcome.error_code = error.code();
  outcome.error_stage = error.stage();
  outcome.error_message = error.what();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    util::LogLine(util::LogLevel::kWarn, "service")
        << "cannot write artifact " << path;
    return;
  }
  out << body;
}

/// Backoff sleep that stays responsive to the cancel token: sleeps in
/// short slices so a deadline firing mid-backoff aborts the wait instead
/// of burning the remaining budget asleep.
void backoff_sleep(double ms, const std::atomic<bool>* cancel) {
  const double deadline = now_ms() + ms;
  while (now_ms() < deadline) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    const double left = deadline - now_ms();
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(left, 10.0)));
  }
}

}  // namespace

JobOutcome run_job(const JobRequest& request, const std::string& job_key,
                   const SupervisorOptions& options, SessionCache& cache,
                   const std::atomic<bool>* cancel, JobCounters* counters) {
  JobOutcome outcome;
  const double start_ms = now_ms();
  const double deadline_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms
                                : options.default_deadline_ms;
  const std::size_t max_attempts = std::max<std::size_t>(
      1, std::min(request.max_attempts > 0 ? request.max_attempts
                                           : options.max_attempts,
                  options.max_attempts));

  // Fault-injected jobs own the process-global registry exclusively for
  // their whole attempt loop; everything else runs shared.
  const bool faulted = options.allow_fault && !request.fault.empty();
  std::shared_lock<std::shared_mutex> shared_guard(fault_mutex(),
                                                   std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive_guard(fault_mutex(),
                                                      std::defer_lock);
  if (faulted)
    exclusive_guard.lock();
  else
    shared_guard.lock();

  std::string checkpoint_dir;
  try {
    FlowConfig config;
    config.seed = request.seed;
    config.threads = request.threads > 0 ? request.threads
                                         : std::max<std::size_t>(
                                               1, options.flow_threads);
    config.baseline_crossbar_size = request.max_size;
    if (request.max_size < 16) {
      config.isc.crossbar_sizes = {request.max_size};
    } else {
      config.isc.crossbar_sizes.clear();
      for (std::size_t s = 16; s <= request.max_size; s += 4)
        config.isc.crossbar_sizes.push_back(s);
    }
    // The threshold comes from the shared cache (one FullCro baseline per
    // (network, max_size) across the daemon's lifetime, not per job). The
    // value is identical to what derive_threshold_from_baseline would
    // compute inline, and constant across attempts — which also keeps the
    // config hash, and therefore checkpoint compatibility, stable.
    config.derive_threshold_from_baseline = false;
    config.isc.utilization_threshold =
        cache.baseline_threshold(request.network, request.max_size);

    if (deadline_ms > 0.0) {
      // Each stage gets the full deadline as its wall budget: in-stage
      // overruns degrade to best-so-far, and the cancel token catches the
      // aggregate overrun at the next stage boundary. Constant across
      // attempts by construction (never derived from remaining time), so
      // retries can still resume the first attempt's checkpoints.
      config.stage_budget.clustering_ms = deadline_ms;
      config.stage_budget.placement_ms = deadline_ms;
      config.stage_budget.routing_ms = deadline_ms;
    }
    config.cancel = cancel;

    if (!options.work_dir.empty()) {
      checkpoint_dir = options.work_dir + "/" + job_key;
      std::error_code ec;
      std::filesystem::remove_all(checkpoint_dir, ec);
      config.checkpoint.dir = checkpoint_dir;
      config.checkpoint.resume = false;
    }

    const auto network = cache.network(request.network);

    if (faulted) util::fault_arm(request.fault);

    for (std::size_t attempt = 1;; ++attempt) {
      outcome.attempts = attempt;
      try {
        const FlowResult result = run_autoncs(*network, config);
        outcome.ok = true;
        outcome.cost = result.cost;
        outcome.degraded = result.degraded;
        outcome.resumed = result.resumed;
        outcome.recovery_events = result.recovery.events().size();
        if (!options.artifact_dir.empty())
          write_file(options.artifact_dir + "/" + job_key + ".manifest.json",
                     telemetry::run_manifest_json(config, result, "autoncs"));
        break;
      } catch (const util::FlowError& error) {
        capture_error(outcome, error);
        if (error.code() == "resource.deadline" && counters != nullptr)
          counters->deadline_cancelled = true;
        const bool deadline_left =
            deadline_ms <= 0.0 || (now_ms() - start_ms) < deadline_ms;
        if (!retryable(error) || attempt >= max_attempts || !deadline_left ||
            (cancel != nullptr &&
             cancel->load(std::memory_order_relaxed))) {
          std::string flight_path;
          if (!options.artifact_dir.empty()) {
            if (error.category() == util::ErrorCategory::kInternal &&
                util::flight_enabled()) {
              flight_path =
                  options.artifact_dir + "/" + job_key + ".flight.json";
              if (!util::flight_write_json(flight_path)) flight_path.clear();
            }
            write_file(
                options.artifact_dir + "/" + job_key + ".manifest.json",
                telemetry::run_error_manifest_json(error, flight_path));
          }
          break;
        }
        if (counters != nullptr) ++counters->retries;
        const double backoff = std::min(
            options.backoff_max_ms,
            options.backoff_initial_ms *
                std::pow(options.backoff_multiplier,
                         static_cast<double>(attempt - 1)));
        util::LogLine(util::LogLevel::kWarn, "service")
            << "job " << job_key << " attempt " << attempt << " failed ("
            << error.code() << "), retrying in " << backoff << " ms";
        backoff_sleep(backoff, cancel);
        // Warm start: resume from whatever checkpoints the failed attempt
        // left behind (e.g. a post-clustering crash resumes clustering).
        if (!checkpoint_dir.empty()) config.checkpoint.resume = true;
      }
    }
  } catch (const util::CheckError& error) {
    // Programmer-error invariant tripped inside the flow: contained as a
    // typed internal failure, the daemon keeps serving.
    outcome.ok = false;
    outcome.error_category = "internal";
    outcome.error_code = "internal.check";
    outcome.error_stage = "flow";
    outcome.error_message = error.what();
  } catch (const util::FlowError& error) {
    // Pre-attempt failures (network load, threshold derivation, bad fault
    // spec) arrive here already typed.
    capture_error(outcome, error);
  } catch (const std::bad_alloc&) {
    outcome.ok = false;
    outcome.error_category = "resource";
    outcome.error_code = "resource.alloc";
    outcome.error_stage = "flow";
    outcome.error_message = "allocation failure while preparing the job";
  } catch (const std::exception& error) {
    outcome.ok = false;
    outcome.error_category = "internal";
    outcome.error_code = "internal.exception";
    outcome.error_stage = "flow";
    outcome.error_message = error.what();
  }

  if (faulted) util::fault_disarm_all();
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(checkpoint_dir, ec);
  }
  outcome.run_ms = now_ms() - start_ms;
  return outcome;
}

}  // namespace autoncs::service
