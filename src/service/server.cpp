#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/error.hpp"
#include "util/flight.hpp"
#include "util/log.hpp"

namespace autoncs::service {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One client connection. The response writer is shared between the
/// reader thread (control-op answers, rejections) and any worker thread
/// finishing one of its jobs, so writes serialize on `write_mutex` and
/// the fd stays owned here until the last respond closure is gone.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Writes `line` + '\n'. MSG_NOSIGNAL (belt) plus the daemon's SIGPIPE
  /// ignore (suspenders): a client hanging up mid-response costs nothing.
  void send_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        open.store(false, std::memory_order_relaxed);
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }
};

/// Watchdog bookkeeping for one in-flight job.
struct Server::ActiveJob {
  double deadline_at_ms = 0.0;  // steady-clock absolute; 0 = no deadline
  std::shared_ptr<std::atomic<bool>> cancel;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_networks),
      queue_(options_.queue_capacity) {
  stats_.workers = options_.workers;
}

Server::~Server() {
  if (started_.load()) {
    request_drain();
    wait();
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Server::start() {
  // A worker writing to a vanished client must get EPIPE, not a fatal
  // signal — this plus MSG_NOSIGNAL is the crash-containment floor.
  std::signal(SIGPIPE, SIG_IGN);

  // Keep the flight recorder armed for the daemon's whole life: a fatal
  // job failure dumps the ring next to its error manifest (the ring is a
  // bounded lock-free multi-writer structure, so concurrent jobs share it
  // safely).
  util::start_flight_recorder();

  // Checkpoint saves create their own per-job subdirectories, but the
  // artifact sink does not — materialize both roots up front so
  // `--artifact-dir` works without a pre-created directory (best-effort,
  // like artifact writes themselves: failure only warns per write).
  std::error_code ec;
  if (!options_.supervisor.work_dir.empty())
    std::filesystem::create_directories(options_.supervisor.work_dir, ec);
  if (!options_.supervisor.artifact_dir.empty())
    std::filesystem::create_directories(options_.supervisor.artifact_dir, ec);

  if (::pipe(wake_pipe_) != 0)
    throw util::InputError("input.io", "service", "cannot create wake pipe");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw util::InputError("input.io", "service", "cannot create socket");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw util::InputError("input.io", "service",
                           "socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw util::InputError(
        "input.io", "service",
        "cannot bind socket " + options_.socket_path + ": " +
            std::strerror(errno));
  if (::listen(listen_fd_, 16) != 0)
    throw util::InputError("input.io", "service", "cannot listen on socket");

  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.workers); ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
  util::LogLine(util::LogLevel::kInfo, "service")
      << "serving on " << options_.socket_path << " (" << options_.workers
      << " workers, queue " << options_.queue_capacity << ")";
}

void Server::request_drain() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    // Async-signal-safe; EAGAIN (pipe already full of drain requests) is
    // as good as a successful write.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

int Server::drain_fd() const { return wake_pipe_[1]; }

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    auto connection = std::make_shared<Connection>();
    connection->fd = client;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, connection] { connection_loop(connection); });
  }
  // Drain: no new connections, no new jobs; everything queued still runs.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  queue_.begin_drain();
}

void Server::connection_loop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  bool discarding = false;  // past-limit line: drop until its newline
  for (;;) {
    pollfd fd{connection->fd, POLLIN, 0};
    const int ready = ::poll(&fd, 1, 100);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::recv(connection->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t begin = 0;
    for (;;) {
      const std::size_t end = buffer.find('\n', begin);
      if (end == std::string::npos) break;
      std::string line = buffer.substr(begin, end - begin);
      begin = end + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (discarding) {
        discarding = false;  // the oversized line finally ended
        continue;
      }
      if (!line.empty()) handle_line(connection, line);
    }
    buffer.erase(0, begin);
    // Hardened buffering: a line that exceeds the request cap is rejected
    // while still partial — the daemon never holds unbounded bytes for
    // one client.
    if (!discarding && buffer.size() > options_.limits.max_request_bytes) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.requests_invalid;
      }
      connection->send_line(response_rejected(
          "", "request_too_large",
          "request line exceeds " +
              std::to_string(options_.limits.max_request_bytes) + " bytes"));
      buffer.clear();
      discarding = true;
    }
  }
  connection->open.store(false, std::memory_order_relaxed);
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         const std::string& line) {
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.requests;
  }
  ParseResult parsed = parse_request(line, options_.limits);
  if (!parsed.ok) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.requests_invalid;
    connection->send_line(response_rejected(parsed.request.id,
                                            parsed.error_code,
                                            parsed.error_message));
    return;
  }
  switch (parsed.request.op) {
    case Op::kPing:
      connection->send_line(response_pong());
      return;
    case Op::kStats:
      connection->send_line(response_stats(stats()));
      return;
    case Op::kShutdown:
      connection->send_line(response_shutting_down());
      request_drain();
      return;
    case Op::kFlow:
      break;
  }
  if (!parsed.request.fault.empty() && !options_.supervisor.allow_fault) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.requests_invalid;
    connection->send_line(response_rejected(
        parsed.request.id, "invalid_request",
        "fault injection is disabled (start the server with --allow-fault)"));
    return;
  }
  const std::size_t seq = next_seq_.fetch_add(1);
  if (parsed.request.id.empty())
    parsed.request.id = "job-" + std::to_string(seq);
  Job job;
  job.request = std::move(parsed.request);
  job.enqueued_ms = now_ms();
  job.respond = [connection](const std::string& response_line) {
    connection->send_line(response_line);
  };
  const std::string id = job.request.id;
  switch (queue_.push(std::move(job))) {
    case PushResult::kAccepted:
      return;
    case PushResult::kQueueFull: {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.jobs_rejected_queue_full;
      }
      connection->send_line(response_rejected(
          id, "queue_full",
          "admission queue is full (" +
              std::to_string(options_.queue_capacity) +
              " jobs); retry with backoff"));
      return;
    }
    case PushResult::kDraining: {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.jobs_rejected_shutting_down;
      }
      connection->send_line(response_rejected(id, "shutting_down",
                                              "server is draining"));
      return;
    }
  }
}

void Server::worker_loop() {
  for (;;) {
    auto job = queue_.pop();
    if (!job.has_value()) return;

    // Register with the watchdog before running.
    auto active = std::make_shared<ActiveJob>();
    active->cancel = std::make_shared<std::atomic<bool>>(false);
    const double deadline =
        job->request.deadline_ms > 0.0
            ? job->request.deadline_ms
            : options_.supervisor.default_deadline_ms;
    if (deadline > 0.0) active->deadline_at_ms = now_ms() + deadline;
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_jobs_.push_back(active);
    }
    watchdog_cv_.notify_all();

    const std::string job_key =
        job->request.id + "." + std::to_string(next_seq_.fetch_add(1));
    JobCounters counters;
    const double queue_ms = now_ms() - job->enqueued_ms;
    const JobOutcome outcome =
        run_job(job->request, job_key, options_.supervisor, cache_,
                active->cancel.get(), &counters);

    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_jobs_.erase(
          std::remove(active_jobs_.begin(), active_jobs_.end(), active),
          active_jobs_.end());
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      if (outcome.ok)
        ++stats_.jobs_ok;
      else
        ++stats_.jobs_failed;
      stats_.retries += counters.retries;
      if (counters.deadline_cancelled) ++stats_.deadline_cancelled;
    }
    job->respond(outcome.ok ? response_ok(job->request.id, outcome, queue_ms)
                            : response_error(job->request.id, outcome,
                                             queue_ms));
  }
}

void Server::watchdog_loop() {
  std::unique_lock<std::mutex> lock(active_mutex_);
  for (;;) {
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (watchdog_stop_) return;
    const double now = now_ms();
    for (const auto& job : active_jobs_) {
      if (job->deadline_at_ms > 0.0 && now >= job->deadline_at_ms)
        job->cancel->store(true, std::memory_order_relaxed);
    }
  }
}

void Server::wait() {
  if (!started_.load()) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // accept_loop has switched the queue to draining, which overrides any
  // test-hook pause: workers finish the backlog and exit on empty.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connection_threads_);
  }
  for (auto& thread : connections) {
    if (thread.joinable()) thread.join();
  }
  started_.store(false);
  util::LogLine(util::LogLevel::kInfo, "service") << "drained and stopped";
}

ServiceStats Server::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.queue_depth = queue_.size();
  const CacheStats cache = cache_.stats();
  snapshot.network_cache_hits = cache.network_hits;
  snapshot.network_cache_misses = cache.network_misses;
  snapshot.threshold_cache_hits = cache.threshold_hits;
  snapshot.threshold_cache_misses = cache.threshold_misses;
  return snapshot;
}

void Server::pause_workers() { queue_.set_paused(true); }

void Server::resume_workers() { queue_.set_paused(false); }

}  // namespace autoncs::service
