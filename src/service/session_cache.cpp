#include "service/session_cache.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "mapping/fullcro.hpp"
#include "nn/io.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace autoncs::service {

namespace {

/// File identity for invalidation. Throws InputError when the file is
/// unreadable so the caller's typed-error path reports it.
void file_identity(const std::string& path, std::uintmax_t& size,
                   std::int64_t& mtime_ns) {
  std::error_code ec;
  size = std::filesystem::file_size(path, ec);
  if (ec)
    throw util::InputError("input.io", "io",
                           path + ": cannot stat network file");
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec)
    throw util::InputError("input.io", "io",
                           path + ": cannot stat network file");
  mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 mtime.time_since_epoch())
                 .count();
}

}  // namespace

SessionCache::SessionCache(std::size_t max_networks)
    : max_networks_(std::max<std::size_t>(1, max_networks)) {}

std::map<std::string, SessionCache::Entry>::iterator SessionCache::lookup(
    const std::string& path) {
  std::uintmax_t size = 0;
  std::int64_t mtime_ns = 0;
  file_identity(path, size, mtime_ns);

  auto it = entries_.find(path);
  if (it != entries_.end() && it->second.file_size == size &&
      it->second.mtime_ns == mtime_ns) {
    ++stats_.network_hits;
    touch(path);
    return it;
  }
  ++stats_.network_misses;
  // Parse outside the entry so a throwing load leaves no stale state.
  auto network = std::make_shared<const nn::ConnectionMatrix>(
      nn::load_network_checked(path));
  Entry entry;
  entry.file_size = size;
  entry.mtime_ns = mtime_ns;
  entry.network = std::move(network);
  if (it == entries_.end()) {
    it = entries_.emplace(path, std::move(entry)).first;
  } else {
    it->second = std::move(entry);  // stale: drop thresholds too
  }
  touch(path);
  evict_if_needed();
  // evict_if_needed never removes the most-recently-used entry.
  return entries_.find(path);
}

std::shared_ptr<const nn::ConnectionMatrix> SessionCache::network(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookup(path)->second.network;
}

double SessionCache::baseline_threshold(const std::string& path,
                                        std::size_t max_size) {
  std::shared_ptr<const nn::ConnectionMatrix> network;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = lookup(path);
    const auto cached = it->second.thresholds.find(max_size);
    if (cached != it->second.thresholds.end()) {
      ++stats_.threshold_hits;
      return cached->second;
    }
    ++stats_.threshold_misses;
    network = it->second.network;
  }
  // The baseline mapping is the expensive part — computed outside the
  // lock so concurrent jobs on other networks are not serialized.
  const double threshold = mapping::fullcro_utilization_threshold(
      *network, {max_size, true});
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(path);
  if (it != entries_.end() && it->second.network == network)
    it->second.thresholds.emplace(max_size, threshold);
  return threshold;
}

CacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SessionCache::touch(const std::string& path) {
  lru_.remove(path);
  lru_.push_front(path);
}

void SessionCache::evict_if_needed() {
  while (entries_.size() > max_networks_ && lru_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    util::LogLine(util::LogLevel::kDebug, "service")
        << "session cache evicted " << victim;
  }
}

}  // namespace autoncs::service
