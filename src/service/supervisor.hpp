// Per-job supervision (docs/service.md): every flow job the daemon runs
// goes through run_job, which wraps the pipeline in the FlowError
// taxonomy and implements the service-level recovery ladder:
//
//   - deadline: the job's deadline_ms feeds every stage wall budget
//     (in-stage hangs degrade to best-so-far) and the caller's cancel
//     token aborts between stages (resource.deadline), so a hung stage
//     is cancelled at the next stage boundary;
//   - retry with exponential backoff for retryable failures (Numerical /
//     Resource, except deadline cancellations), capped attempts; every
//     retry resumes from the job's last good checkpoint, so a crash
//     after clustering never recomputes clustering;
//   - crash containment: CheckError, bad_alloc and unknown exceptions
//     are converted to typed outcomes; a fatal (internal) failure dumps
//     the flight-recorder ring next to the job's error manifest and the
//     worker returns to the pool — the daemon never dies with a job.
//
// Fault-injected jobs (testing only) arm the process-global fault
// registry, so run_job serializes them: a job carrying a fault spec takes
// an exclusive lock while every normal job holds it shared — the
// deterministic fire schedule cannot leak into an unrelated job.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "service/protocol.hpp"
#include "service/session_cache.hpp"

namespace autoncs::service {

struct SupervisorOptions {
  /// Attempt cap for retryable failures (>= 1); requests may lower but
  /// never exceed it.
  std::size_t max_attempts = 3;
  /// Exponential backoff between attempts: initial * multiplier^(n-1),
  /// capped at backoff_max_ms. Kept short — the failures being retried
  /// are deterministic-transient (fault injection, allocation pressure),
  /// not remote services.
  double backoff_initial_ms = 25.0;
  double backoff_multiplier = 4.0;
  double backoff_max_ms = 1000.0;
  /// Deadline applied when a request does not set its own; 0 = none.
  double default_deadline_ms = 0.0;
  /// Worker threads each flow may use when the request does not ask for
  /// a specific count.
  std::size_t flow_threads = 1;
  /// Per-job checkpoint dirs live under here; "" disables checkpoints
  /// (and therefore warm-started retries — they recompute instead).
  std::string work_dir;
  /// Per-job run/error manifests (and fatal-failure flight dumps) land
  /// here as <id>.manifest.json / <id>.flight.json; "" disables.
  std::string artifact_dir;
  /// Honor request fault specs (testing only; off in production).
  bool allow_fault = false;
};

/// Counters run_job reports back to the server's stats.
struct JobCounters {
  std::size_t retries = 0;
  bool deadline_cancelled = false;
};

/// Runs one flow job to a terminal outcome. Never throws. `job_key` is a
/// collision-free key for the job's scratch dirs (the server suffixes a
/// sequence number so a reused client id cannot collide); `cancel` is the
/// watchdog's token (may be null).
JobOutcome run_job(const JobRequest& request, const std::string& job_key,
                   const SupervisorOptions& options, SessionCache& cache,
                   const std::atomic<bool>* cancel,
                   JobCounters* counters = nullptr);

}  // namespace autoncs::service
