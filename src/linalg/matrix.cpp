#include "linalg/matrix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace autoncs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    AUTONCS_CHECK(rows[r].size() == m.cols_, "ragged initializer rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  AUTONCS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  AUTONCS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  AUTONCS_DCHECK(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  AUTONCS_DCHECK(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  AUTONCS_CHECK(cols_ == other.rows_, "inner dimensions must match");
  Matrix out(rows_, other.cols_);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  AUTONCS_CHECK(x.size() == cols_, "vector size must match matrix columns");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = data_.data() + i * cols_;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
  return y;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  AUTONCS_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "shapes must match");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double dot(std::span<const double> a, std::span<const double> b) {
  AUTONCS_CHECK(a.size() == b.size(), "dot: sizes must match");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  AUTONCS_CHECK(a.size() == b.size(), "squared_distance: sizes must match");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace autoncs::linalg
