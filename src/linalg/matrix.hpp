// Dense row-major matrix of doubles. This is the numerical workhorse under
// the spectral embedding; it deliberately implements only what the framework
// needs (no expression templates, no BLAS dependency) so the whole stack
// stays self-contained and auditable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autoncs::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds a matrix from nested initializer data (row major); all rows
  /// must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  Matrix transposed() const;

  /// General matrix product (this * other).
  Matrix multiply(const Matrix& other) const;

  /// Matrix-vector product.
  std::vector<double> multiply(std::span<const double> x) const;

  /// Frobenius norm of (this - other); both must be the same shape.
  double frobenius_distance(const Matrix& other) const;

  /// True if |a_ij - a_ji| <= tol for all i, j.
  bool is_symmetric(double tol = 1e-12) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);

/// Dot product (sizes must match).
double dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between two equally sized vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace autoncs::linalg
