#include "linalg/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::linalg {

namespace {

/// Points below this count are assigned sequentially even when a pool is
/// given — the dispatch overhead dominates (results are identical either
/// way; this is purely a scheduling decision).
constexpr std::size_t kParallelPointCutoff = 256;

std::size_t nearest_centroid(const Matrix& points, std::size_t i,
                             const Matrix& centroids) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d = squared_distance(points.row(i), centroids.row(c));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

/// Assigns every point to its nearest centroid, distributing points over
/// the pool. The tie-break (strict <, first centroid wins) and each
/// point's arithmetic are independent of the partition, so the result is
/// bit-identical for any thread count.
void assign_all(const Matrix& points, const Matrix& centroids,
                std::vector<std::size_t>& assignment, util::ThreadPool* pool) {
  const std::size_t n = points.rows();
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      assignment[i] = nearest_centroid(points, i, centroids);
  };
  if (pool != nullptr && pool->size() > 1 && n >= kParallelPointCutoff) {
    pool->parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      body(begin, end);
    });
  } else {
    body(0, n);
  }
}

/// True when the centroid set carries no information (all rows identical),
/// e.g. the all-zeros initialization in GCP.
bool is_degenerate(const Matrix& centroids) {
  for (std::size_t r = 1; r < centroids.rows(); ++r)
    if (squared_distance(centroids.row(r), centroids.row(0)) > 0.0) return false;
  return centroids.rows() > 1;
}

}  // namespace

Matrix kmeans_plus_plus_seeds(const Matrix& points, std::size_t k, util::Rng& rng) {
  const std::size_t n = points.rows();
  AUTONCS_CHECK(k >= 1 && k <= n, "k-means++ requires 1 <= k <= n");
  const std::size_t dim = points.cols();
  Matrix centroids(k, dim);

  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  const auto first = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t c = 0; c < dim; ++c) centroids(0, c) = points(first, c);

  for (std::size_t picked = 1; picked < k; ++picked) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = squared_distance(points.row(i), centroids.row(picked - 1));
      min_d2[i] = std::min(min_d2[i], d);
      total += min_d2[i];
    }
    std::size_t choice;
    if (total <= 0.0) {
      // All points coincide with chosen seeds; any point works.
      choice = static_cast<std::size_t>(rng.next_below(n));
    } else {
      double target = rng.uniform() * total;
      choice = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_d2[i];
        if (target <= 0.0) {
          choice = i;
          break;
        }
      }
    }
    for (std::size_t c = 0; c < dim; ++c) centroids(picked, c) = points(choice, c);
  }
  return centroids;
}

KMeansResult kmeans(const Matrix& points, std::size_t k, util::Rng& rng,
                    const KMeansOptions& options) {
  return kmeans_warm(points, kmeans_plus_plus_seeds(points, k, rng), rng, options);
}

KMeansResult kmeans_warm(const Matrix& points, Matrix centroids, util::Rng& rng,
                         const KMeansOptions& options) {
  const std::size_t n = points.rows();
  const std::size_t k = centroids.rows();
  AUTONCS_CHECK(k >= 1 && k <= n, "k-means requires 1 <= k <= n");
  AUTONCS_CHECK(centroids.cols() == points.cols(),
                "centroid dimension must match the points");
  if (is_degenerate(centroids)) {
    centroids = kmeans_plus_plus_seeds(points, k, rng);
  }

  const std::size_t dim = points.cols();
  KMeansResult result;
  result.assignment.assign(n, 0);
  std::vector<std::size_t> counts(k, 0);
  Matrix next(k, dim);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    assign_all(points, centroids, result.assignment, options.pool);

    // Update step.
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    std::fill(next.data().begin(), next.data().end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) next(c, d) += points(i, d);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed on the point farthest from its centroid.
        std::size_t worst = 0;
        double worst_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              squared_distance(points.row(i), centroids.row(result.assignment[i]));
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        for (std::size_t d = 0; d < dim; ++d) next(c, d) = points(worst, d);
        result.assignment[worst] = c;
      } else {
        for (std::size_t d = 0; d < dim; ++d)
          next(c, d) /= static_cast<double>(counts[c]);
      }
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c)
      movement += squared_distance(next.row(c), centroids.row(c));
    centroids = next;
    if (movement <= options.tolerance) break;
  }

  // Final assignment against the converged centroids and inertia. The
  // per-point distances land in a buffer and are folded sequentially in
  // point order — the exact summation order of the sequential code — so
  // the inertia is bit-identical for any thread count.
  assign_all(points, centroids, result.assignment, options.pool);
  std::vector<double> d2(n, 0.0);
  const auto distance_body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      d2[i] = squared_distance(points.row(i), centroids.row(result.assignment[i]));
  };
  if (options.pool != nullptr && options.pool->size() > 1 &&
      n >= kParallelPointCutoff) {
    options.pool->parallel_for(
        n, [&](std::size_t begin, std::size_t end, std::size_t) {
          distance_body(begin, end);
        });
  } else {
    distance_body(0, n);
  }
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) result.inertia += d2[i];
  result.centroids = std::move(centroids);
  return result;
}

std::vector<std::vector<std::size_t>> cluster_members(
    const std::vector<std::size_t>& assignment, std::size_t k) {
  std::vector<std::vector<std::size_t>> members(k);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    AUTONCS_CHECK(assignment[i] < k, "assignment index out of range");
    members[assignment[i]].push_back(i);
  }
  return members;
}

}  // namespace autoncs::linalg
