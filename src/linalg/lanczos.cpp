#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::linalg {

namespace {

/// Fixed reduction block. Partial sums are always formed per block and
/// folded in block order, so the arithmetic never depends on how many
/// workers the blocks were spread across.
constexpr std::size_t kReductionBlock = 2048;

/// Below this element count the pool dispatch overhead dominates; run the
/// (identical) blocked arithmetic on the calling thread.
constexpr std::size_t kParallelCutoff = 4096;

/// Element-parallel loop; per-element work is independent, so the result
/// is bit-identical for any thread count.
template <typename Fn>
void parallel_elements(std::size_t count, util::ThreadPool* pool, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || count < kParallelCutoff) {
    fn(std::size_t{0}, count);
    return;
  }
  pool->parallel_for(count,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       fn(begin, end);
                     });
}

}  // namespace

double deterministic_dot(std::span<const double> a, std::span<const double> b,
                         util::ThreadPool* pool) {
  AUTONCS_CHECK(a.size() == b.size(), "dot operand sizes must match");
  const std::size_t n = a.size();
  const std::size_t blocks = (n + kReductionBlock - 1) / kReductionBlock;
  if (blocks <= 1) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    return acc;
  }
  // Phase 1: per-block partial sums, each accumulated sequentially within
  // its fixed [blk * B, blk * B + B) range regardless of which worker ran it.
  std::vector<double> partial(blocks, 0.0);
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t blk = begin; blk < end; ++blk) {
      const std::size_t lo = blk * kReductionBlock;
      const std::size_t hi = std::min(n, lo + kReductionBlock);
      double acc = 0.0;
      for (std::size_t i = lo; i < hi; ++i) acc += a[i] * b[i];
      partial[blk] = acc;
    }
  };
  if (pool != nullptr && pool->size() > 1 && n >= kParallelCutoff) {
    pool->parallel_for(blocks,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         body(begin, end);
                       });
  } else {
    body(0, blocks);
  }
  // Phase 2: sequential fold in block order.
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

namespace {

/// Deterministic pseudo-random vector for block starts and deflation
/// restarts; `stream` distinguishes successive draws.
std::vector<double> seed_vector(std::size_t n, std::size_t stream) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull + i +
                      (static_cast<std::uint64_t>(stream) << 32);
    const double unit =
        static_cast<double>(util::split_mix64(h) >> 11) * 0x1.0p-53;
    v[i] = unit - 0.5;
  }
  return v;
}

/// w -= sum_i coeff[i] * basis[i]; element-parallel (the per-element
/// operation order is the fixed i-ascending loop either way).
void subtract_projections(std::vector<double>& w,
                          const std::vector<std::vector<double>>& basis,
                          std::span<const double> coeff,
                          util::ThreadPool* pool) {
  parallel_elements(w.size(), pool, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = 0; i < coeff.size(); ++i) {
      const double c = coeff[i];
      if (c == 0.0) continue;
      const double* v = basis[i].data();
      for (std::size_t x = begin; x < end; ++x) w[x] -= c * v[x];
    }
  });
}

/// Two-pass classical Gram-Schmidt of w against the whole basis — the
/// "full deterministic reorthogonalization" that keeps the computed basis
/// orthonormal to machine precision (plain Lanczos loses orthogonality and
/// produces ghost eigenvalues).
void full_reorthogonalize(std::vector<double>& w,
                          const std::vector<std::vector<double>>& basis,
                          util::ThreadPool* pool) {
  std::vector<double> coeff(basis.size());
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < basis.size(); ++i)
      coeff[i] = deterministic_dot(basis[i], w, pool);
    subtract_projections(w, basis, coeff, pool);
  }
}

/// y = sum_j s[j] * columns[j], element-parallel.
void combine_columns(const std::vector<std::vector<double>>& columns,
                     std::span<const double> s, std::vector<double>& y,
                     util::ThreadPool* pool) {
  parallel_elements(y.size(), pool, [&](std::size_t begin, std::size_t end) {
    for (std::size_t x = begin; x < end; ++x) y[x] = 0.0;
    for (std::size_t j = 0; j < s.size(); ++j) {
      const double c = s[j];
      if (c == 0.0) continue;
      const double* v = columns[j].data();
      for (std::size_t x = begin; x < end; ++x) y[x] += c * v[x];
    }
  });
}

}  // namespace

EigenDecomposition lanczos_smallest(const SparseMatrix& a, std::size_t k,
                                    const LanczosOptions& options) {
  const std::size_t n = a.rows();
  AUTONCS_CHECK(a.cols() == n, "lanczos needs a square matrix");
  AUTONCS_CHECK(k >= 1 && k <= n, "lanczos requires 1 <= k <= n");
  util::ThreadPool* pool = options.pool;

  std::size_t cap = std::max(
      k, options.max_iterations == 0 ? n : std::min(n, options.max_iterations));
  // Injected non-convergence: collapse the budget to the bare k-vector
  // basis, yielding a genuinely unconverged Rayleigh-Ritz answer that the
  // caller's recovery ladder must detect and repair.
  if (AUTONCS_FAULT_POINT("lanczos.no_converge")) cap = k;

  // Matrix scale for the dimensionless breakdown test.
  double scale = 0.0;
  for (double v : a.values()) scale = std::max(scale, std::abs(v));
  if (scale == 0.0) scale = 1.0;
  const double breakdown_tol = scale * 1e-10;

  // Block size: a Krylov space grown from a single vector contains exactly
  // one direction per distinct eigenvalue, so a b-vector block is what
  // captures eigenvalue multiplicities up to b (clusters of structurally
  // equivalent neurons and disconnected graph components produce them
  // routinely).
  const std::size_t block = std::min<std::size_t>(std::max<std::size_t>(k, 1), 8);

  std::vector<std::vector<double>> basis;   // orthonormal V, column per entry
  std::vector<std::vector<double>> av;      // A * basis[i], same indexing
  basis.reserve(std::min(cap, std::size_t{128}));
  av.reserve(std::min(cap, std::size_t{128}));
  std::size_t stream = 0;

  // Lower triangles (stored by column) of H = V^T A V and G = (AV)^T (AV).
  // Entries between already-appended vectors never change, so each append
  // fills exactly one new column — O(m) dots per vector instead of the
  // O(m^2) a from-scratch rebuild would cost at every convergence check.
  std::vector<std::vector<double>> h_col;
  std::vector<std::vector<double>> g_col;

  std::size_t matvec_count = 0;

  // Appends an already-orthonormalized vector and its matvec image.
  const auto append = [&](std::vector<double> v) {
    std::vector<double> image(n);
    a.multiply_into(v, image, pool);
    ++matvec_count;
    basis.push_back(std::move(v));
    av.push_back(std::move(image));
    const std::size_t q = basis.size() - 1;
    std::vector<double> hc(q + 1);
    std::vector<double> gc(q + 1);
    for (std::size_t i = 0; i < q; ++i) {
      hc[i] = deterministic_dot(basis[i], av[q], pool);
      gc[i] = deterministic_dot(av[i], av[q], pool);
    }
    hc[q] = deterministic_dot(basis[q], av[q], pool);
    gc[q] = deterministic_dot(av[q], av[q], pool);
    h_col.push_back(std::move(hc));
    g_col.push_back(std::move(gc));
  };

  // Orthonormalizes fresh deterministic directions until one survives;
  // returns false once the basis spans the whole space.
  const auto inject_fresh = [&]() {
    while (stream < n + 2 * block + 16) {
      std::vector<double> w = seed_vector(n, stream++);
      const double raw = std::sqrt(deterministic_dot(w, w, pool));
      for (double& x : w) x /= raw;
      full_reorthogonalize(w, basis, pool);
      const double nrm = std::sqrt(deterministic_dot(w, w, pool));
      if (nrm > 1e-8) {
        for (double& x : w) x /= nrm;
        append(std::move(w));
        return true;
      }
    }
    return false;
  };

  // Initial block.
  for (std::size_t i = 0; i < block && basis.size() < cap; ++i)
    if (!inject_fresh()) break;

  // Rayleigh-Ritz on the current basis: H = V^T A V (block tridiagonal in
  // exact arithmetic; assembled densely from the cached triangle and handed
  // to the dense tred2/tql2 solver, which is exactly the small-system role
  // the dense path keeps).
  EigenDecomposition ritz;
  const auto solve_projected = [&]() {
    const std::size_t m = basis.size();
    Matrix h(m, m);
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i <= j; ++i) {
        h(i, j) = h_col[j][i];
        h(j, i) = h_col[j][i];
      }
    ritz = symmetric_eigen(h);
  };

  // Cheap residual estimate for Ritz pair i from the cached Gram matrices:
  // ||A y - theta y||^2 = s^T G s - 2 theta s^T H s + theta^2 s^T s with
  // y = V s. O(m^2), no length-n work — but the subtraction floors it near
  // sqrt(m * eps) * scale, so it can only GATE the true residual below.
  std::vector<double> s_buf;
  std::vector<double> hs_buf;
  std::vector<double> gs_buf;
  const auto pair_estimate = [&](std::size_t i) {
    const std::size_t m = basis.size();
    s_buf.assign(m, 0.0);
    hs_buf.assign(m, 0.0);
    gs_buf.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) s_buf[j] = ritz.vectors(j, i);
    for (std::size_t j = 0; j < m; ++j) {
      const double sj = s_buf[j];
      for (std::size_t r = 0; r < j; ++r) {
        hs_buf[r] += h_col[j][r] * sj;
        hs_buf[j] += h_col[j][r] * s_buf[r];
        gs_buf[r] += g_col[j][r] * sj;
        gs_buf[j] += g_col[j][r] * s_buf[r];
      }
      hs_buf[j] += h_col[j][j] * sj;
      gs_buf[j] += g_col[j][j] * sj;
    }
    double sgs = 0.0, shs = 0.0, ss = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      sgs += s_buf[j] * gs_buf[j];
      shs += s_buf[j] * hs_buf[j];
      ss += s_buf[j] * s_buf[j];
    }
    const double theta = ritz.values[i];
    return std::sqrt(std::max(0.0, sgs - 2.0 * theta * shs + theta * theta * ss));
  };

  // Residual-based convergence: ||A y - theta y|| for Ritz pair (theta, y),
  // y = V s. A pair whose cheap estimate sits clearly above tolerance is
  // refuted outright; only estimates near or below it pay for the O(k m n)
  // true-residual confirmation. Checked on a deterministic schedule.
  std::vector<double> y(n);
  std::vector<double> z(n);
  const auto converged = [&]() {
    const std::size_t m = basis.size();
    if (m < k) return false;
    if (options.stats != nullptr) {
      // Observational only: recomputes the cheap estimates the gate below
      // also derives from the cached triangles; never alters control flow.
      double worst = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const double theta = ritz.values[i];
        worst = std::max(worst, pair_estimate(i) /
                                    std::max(scale, std::abs(theta)));
      }
      options.stats->residual_history.push_back(worst);
    }
    if (m >= n) return true;  // exact Rayleigh-Ritz on the full space
    const double gate = std::max(32.0 * options.tolerance, 1e-5);
    for (std::size_t i = 0; i < k; ++i) {
      const double theta = ritz.values[i];
      if (pair_estimate(i) > gate * std::max(scale, std::abs(theta)))
        return false;
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<double> s(m);
      for (std::size_t j = 0; j < m; ++j) s[j] = ritz.vectors(j, i);
      combine_columns(basis, s, y, pool);
      combine_columns(av, s, z, pool);
      const double theta = ritz.values[i];
      parallel_elements(n, pool, [&](std::size_t begin, std::size_t end) {
        for (std::size_t x = begin; x < end; ++x) z[x] -= theta * y[x];
      });
      const double resid = std::sqrt(deterministic_dot(z, z, pool));
      if (resid > options.tolerance * std::max(scale, std::abs(theta)))
        return false;
    }
    return true;
  };

  const std::size_t min_basis = std::min(cap, std::max(2 * k, k + 2 * block));
  bool done = false;
  std::size_t steps_since_check = 0;
  while (!done && basis.size() < cap) {
    // Expand: children of the newest block are their matvec images,
    // orthogonalized against everything (block Lanczos recurrence; full
    // reorthogonalization makes the older terms vanish explicitly).
    const std::size_t block_lo = basis.size() - std::min(block, basis.size());
    const std::size_t block_hi = basis.size();
    bool space_exhausted = false;
    for (std::size_t idx = block_lo; idx < block_hi && basis.size() < cap;
         ++idx) {
      std::vector<double> w = av[idx];
      full_reorthogonalize(w, basis, pool);
      const double nrm = std::sqrt(deterministic_dot(w, w, pool));
      if (nrm > breakdown_tol) {
        for (double& x : w) x /= nrm;
        append(std::move(w));
      } else if (!inject_fresh()) {
        // Basis spans an invariant subspace covering the whole space.
        space_exhausted = true;
        break;
      }
    }
    ++steps_since_check;
    // Each check pays an O(m^3) projected eigensolve, so the cadence
    // stretches as the basis grows — frequent while checks are cheap,
    // sparse once they are not. Depends only on basis.size(): deterministic.
    const std::size_t check_interval =
        std::max<std::size_t>(2, basis.size() / (8 * block));
    if (space_exhausted || basis.size() >= cap ||
        (basis.size() >= min_basis && steps_since_check >= check_interval)) {
      steps_since_check = 0;
      solve_projected();
      done = converged();
      if (space_exhausted) break;
    }
  }
  if (ritz.values.size() != basis.size()) solve_projected();

  const std::size_t m = basis.size();
  AUTONCS_CHECK(m >= k, "lanczos basis smaller than requested pair count");
  if (options.stats != nullptr) {
    options.stats->converged = done;
    options.stats->basis_size = m;
    options.stats->matvecs = matvec_count;
  }

  // Ritz vectors for the k smallest Ritz values, renormalized so
  // downstream geometry sees exactly unit columns.
  EigenDecomposition out;
  out.values.assign(ritz.values.begin(),
                    ritz.values.begin() + static_cast<std::ptrdiff_t>(k));
  out.vectors = Matrix(n, k);
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<double> s(m);
    for (std::size_t j = 0; j < m; ++j) s[j] = ritz.vectors(j, i);
    combine_columns(basis, s, y, pool);
    const double nrm = std::sqrt(deterministic_dot(y, y, pool));
    const double inv = nrm > 0.0 ? 1.0 / nrm : 1.0;
    for (std::size_t x = 0; x < n; ++x) out.vectors(x, i) = y[x] * inv;
  }
  return out;
}

EigenDecomposition sparse_laplacian_embedding(
    const SparseMatrix& weights, std::size_t k,
    const GeneralizedEigenOptions& options, const LanczosOptions& lanczos) {
  const std::size_t n = weights.rows();
  AUTONCS_CHECK(weights.cols() == n, "weight matrix must be square");
  AUTONCS_CHECK(k >= 1 && k <= n, "embedding dimension must be in [1, n]");

  // Degrees (diagonal ignored, as in the dense path).
  std::vector<double> degrees(n, 0.0);
  const auto& offsets = weights.row_offsets();
  const auto& cols = weights.col_indices();
  const auto& vals = weights.values();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      if (cols[e] == r) continue;
      AUTONCS_DCHECK(vals[e] >= 0.0, "similarity weights must be nonnegative");
      degrees[r] += vals[e];
    }

  std::vector<double> inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i)
    inv_sqrt[i] = 1.0 / std::sqrt(std::max(degrees[i], options.degree_floor));

  // M = D^{-1/2} (D - W) D^{-1/2}, assembled directly in CSR — the network
  // is never densified on this path.
  std::vector<Triplet> triplets;
  triplets.reserve(weights.nonzeros() + n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      const std::size_t c = cols[e];
      if (c == r) continue;
      triplets.push_back({r, c, inv_sqrt[r] * -vals[e] * inv_sqrt[c]});
    }
    triplets.push_back({r, r, inv_sqrt[r] * degrees[r] * inv_sqrt[r]});
  }
  const SparseMatrix m(n, n, std::move(triplets));

  EigenDecomposition dec = lanczos_smallest(m, k, lanczos);
  // Back-transform u = D^{-1/2} v and (optionally) unit-normalize, exactly
  // as generalized_symmetric_eigen does on the dense path.
  for (std::size_t j = 0; j < k; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dec.vectors(i, j) *= inv_sqrt[i];
      norm_sq += dec.vectors(i, j) * dec.vectors(i, j);
    }
    if (options.unit_normalize && norm_sq > 0.0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (std::size_t i = 0; i < n; ++i) dec.vectors(i, j) *= inv;
    }
  }
  return dec;
}

}  // namespace autoncs::linalg
