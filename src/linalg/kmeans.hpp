// Lloyd's k-means with k-means++ seeding and warm-start support.
//
// The paper's clustering algorithms use k-means twice: MSC (Alg. 1) runs it
// on the spectral embedding rows, and GCP (Alg. 2) re-runs it with the
// centroid set B carried across inner iterations ("under B, cluster the
// points ... and update B") while splitting oversize clusters with a
// 2-means. Both needs are served here; empty clusters are repaired by
// reseeding on the point farthest from its centroid, which keeps k stable.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace autoncs::util {
class ThreadPool;
}

namespace autoncs::linalg {

struct KMeansOptions {
  std::size_t max_iterations = 100;
  /// Convergence threshold on total squared centroid movement.
  double tolerance = 1e-10;
  /// Optional pool for the assignment step (each point's nearest centroid
  /// is independent, so the partition cannot change any result — outputs
  /// are bit-identical for every thread count). The update step stays
  /// sequential: it accumulates over points in index order.
  util::ThreadPool* pool = nullptr;
};

struct KMeansResult {
  /// assignment[i] is the cluster index of point i (in [0, k)).
  std::vector<std::size_t> assignment;
  /// k x dim centroid matrix.
  Matrix centroids;
  /// Sum of squared distances from each point to its centroid.
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// k-means++ seeding: returns a k x dim centroid matrix chosen from the
/// points with the standard D² weighting. Requires 1 <= k <= n.
Matrix kmeans_plus_plus_seeds(const Matrix& points, std::size_t k, util::Rng& rng);

/// Full k-means from k-means++ seeds.
KMeansResult kmeans(const Matrix& points, std::size_t k, util::Rng& rng,
                    const KMeansOptions& options = {});

/// k-means warm-started from the given centroids (k = centroids.rows()).
/// Degenerate centroid sets (e.g. the all-zero initialization of GCP
/// Alg. 2 line 2) are detected and replaced with k-means++ seeds.
KMeansResult kmeans_warm(const Matrix& points, Matrix centroids, util::Rng& rng,
                         const KMeansOptions& options = {});

/// Members of each cluster from an assignment vector.
std::vector<std::vector<std::size_t>> cluster_members(
    const std::vector<std::size_t>& assignment, std::size_t k);

}  // namespace autoncs::linalg
