// Generalized symmetric eigenproblem L u = λ D u for the spectral
// embedding (Algorithms 1 and 2 of the paper). D is the degree matrix of
// the (symmetrized) connection graph, so it is diagonal and nonnegative;
// the problem is reduced to the ordinary symmetric problem
//   (D^{-1/2} L D^{-1/2}) v = λ v,   u = D^{-1/2} v,
// which is the normalized-cut formulation of Shi & Malik [11].
//
// Isolated neurons (degree 0) would make D singular; they are handled by
// flooring the degree at a small epsilon, which leaves their embedding rows
// essentially arbitrary — correct, since a disconnected neuron contributes
// no connections to any cluster.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace autoncs::linalg {

struct GeneralizedEigenOptions {
  /// Floor applied to zero diagonal degrees to keep D invertible. For
  /// binary connection graphs 1.0 is the natural choice: an isolated
  /// node's back-transformed coordinate then stays on the same scale as
  /// everyone else's instead of exploding by 1/sqrt(floor) and hijacking
  /// every k-means distance downstream.
  double degree_floor = 1.0;
  /// Normalize each back-transformed eigenvector u_j to unit Euclidean
  /// norm. The generalized eigenvectors are D-orthonormal, so their
  /// 2-norms vary with the degree distribution; unit-normalizing keeps
  /// all embedding columns commensurate for k-means.
  bool unit_normalize = true;
};

/// Solves L u = λ D u where `laplacian` is symmetric and `degrees` holds
/// the diagonal of D (size must match). Returns all n eigenpairs with
/// ascending eigenvalues; column j of `vectors` is u_j (D-orthonormal).
EigenDecomposition generalized_symmetric_eigen(
    const Matrix& laplacian, const std::vector<double>& degrees,
    const GeneralizedEigenOptions& options = {});

/// Convenience: builds L = D - W from a symmetric weight matrix W, then
/// solves the generalized problem. W's diagonal is ignored (self loops
/// cancel out of the Laplacian).
EigenDecomposition laplacian_embedding(const Matrix& weights,
                                       const GeneralizedEigenOptions& options = {});

}  // namespace autoncs::linalg
