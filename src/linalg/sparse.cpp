#include "linalg/sparse.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const auto& t : triplets) {
    AUTONCS_CHECK(t.row < rows && t.col < cols, "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    col_indices_.push_back(triplets[i].col);
    values_.push_back(sum);
    ++row_offsets_[triplets[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double tol) {
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (std::abs(dense(r, c)) > tol)
        triplets.push_back({r, c, dense(r, c)});
  return SparseMatrix(dense.rows(), dense.cols(), std::move(triplets));
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  AUTONCS_CHECK(r < rows_ && c < cols_, "sparse index out of range");
  const auto begin = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[r]);
  const auto end = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  multiply_into(x, y, nullptr);
  return y;
}

void SparseMatrix::multiply_into(std::span<const double> x, std::span<double> y,
                                 util::ThreadPool* pool) const {
  AUTONCS_CHECK(x.size() == cols_, "vector size must match matrix columns");
  AUTONCS_CHECK(y.size() == rows_, "output size must match matrix rows");
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
        acc += values_[k] * x[col_indices_[k]];
      y[r] = acc;
    }
  };
  // Each row accumulates sequentially within itself, so the partition does
  // not affect the arithmetic — bit-identical for any thread count.
  if (pool != nullptr && pool->size() > 1 && rows_ >= 512) {
    pool->parallel_for(rows_,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         body(begin, end);
                       });
  } else {
    body(0, rows_);
  }
}

std::vector<double> SparseMatrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      sums[r] += values_[k];
  return sums;
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      dense(r, col_indices_[k]) = values_[k];
  return dense;
}

}  // namespace autoncs::linalg
