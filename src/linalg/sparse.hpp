// Compressed sparse row (CSR) matrix. Connection matrices of realistic
// neural networks are >90% sparse (Sec. 2.2 of the paper), so the network
// substrate stores them in CSR and only densifies the (small) per-round
// matrices handed to the eigensolver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace autoncs::util {
class ThreadPool;
}

namespace autoncs::linalg {

/// One explicit entry of a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// Builds CSR from possibly unsorted triplets; duplicate (row, col)
  /// entries are summed.
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  static SparseMatrix from_dense(const Matrix& dense, double tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Value at (r, c); O(log nnz_row) binary search, 0 if absent.
  double at(std::size_t r, std::size_t c) const;

  /// y = A x.
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A x into a caller-provided buffer; rows are distributed over the
  /// pool (when given) with each row accumulated sequentially, so the
  /// result is bit-identical for any thread count. This is the Lanczos
  /// matvec kernel.
  void multiply_into(std::span<const double> x, std::span<double> y,
                     util::ThreadPool* pool = nullptr) const;

  /// Row-sum vector (degrees for a nonnegative adjacency matrix).
  std::vector<double> row_sums() const;

  Matrix to_dense() const;

  /// CSR internals (exposed for iteration by the clustering code).
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Logical footprint of the CSR arrays in bytes — fully determined by
  /// the matrix shape and sparsity, so thread-count invariant.
  double footprint_bytes() const {
    return static_cast<double>(
        (row_offsets_.size() + col_indices_.size()) * sizeof(std::size_t) +
        values_.size() * sizeof(double));
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_ + 1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace autoncs::linalg
