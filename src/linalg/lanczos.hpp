// Sparse iterative eigensolver: block Lanczos with full deterministic
// reorthogonalization for the k smallest eigenpairs of a symmetric CSR
// matrix.
//
// The clustering front end only consumes the k smallest generalized
// eigenvectors of the graph Laplacian (Algorithms 1 and 2 of the paper),
// yet the dense tred2/tql2 path computes all n of them at O(n^3). The
// Lanczos path builds a Krylov basis with `SparseMatrix::multiply` as its
// kernel — O(m * nnz + m^2 * n) for an m-vector basis with m ~ O(k) — which
// is what lets the ISC front end scale past the ~10^3 neurons the dense
// solver can afford.
//
// Determinism: every floating-point reduction (dot products, norms) is
// computed block-wise with a fixed block size and folded in a fixed
// sequential order, and the sparse matvec parallelizes over rows with each
// row accumulated sequentially. The result is therefore bit-identical for
// any thread count, the same guarantee the placer and router give (see
// docs/threading.md). Starting vectors are fixed SplitMix64-derived
// pseudo-random vectors, so repeated runs are bit-identical as well.
//
// Degenerate eigenvalues: a Krylov space grown from one vector contains a
// single direction per distinct eigenvalue, so the basis grows in blocks
// (capturing multiplicities up to the block size), and when an expansion
// direction vanishes (invariant subspace hit) a fresh deterministic
// direction orthogonal to the basis is injected. The projected matrix
// V^T A V — block tridiagonal in exact arithmetic — is solved with the
// existing dense tred2/tql2 solver, which stays the authority for every
// small dense system.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/generalized_eigen.hpp"
#include "linalg/sparse.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace autoncs::util {
class ThreadPool;
}

namespace autoncs::linalg {

/// Convergence telemetry of one lanczos_smallest call. Filled only when a
/// LanczosOptions::stats sink is given; collecting it never changes the
/// computation (the recorded estimates are recomputed from cached Gram
/// matrices), so results are identical with or without a sink.
struct LanczosStats {
  /// True when the k requested pairs passed the residual test (or the basis
  /// reached the full space, where Rayleigh-Ritz is exact). False means the
  /// iteration budget ran out first — the returned pairs are best-effort
  /// and callers should escalate (more iterations, or the dense solver).
  bool converged = false;
  /// Final Krylov basis size m.
  std::size_t basis_size = 0;
  /// Sparse matvec invocations (one per basis vector appended).
  std::size_t matvecs = 0;
  /// Worst (largest) relative Ritz-residual estimate over the k requested
  /// pairs at each convergence check, in check order — the series that
  /// shows how the solve converged.
  std::vector<double> residual_history;
};

struct LanczosOptions {
  /// Hard cap on Krylov basis size; 0 = up to n (always sufficient).
  std::size_t max_iterations = 0;
  /// Convergence threshold on the Ritz residual bound |beta_m * s_{m,i}|,
  /// relative to max(1, |theta_i|).
  double tolerance = 1e-10;
  /// Optional pool for the matvec / reorthogonalization hot loops. Null or
  /// single-thread pools run the identical blocked arithmetic sequentially,
  /// so results do not depend on this in any way.
  util::ThreadPool* pool = nullptr;
  /// Optional convergence-telemetry sink (see LanczosStats). Purely
  /// observational; null disables collection.
  LanczosStats* stats = nullptr;
};

/// k smallest eigenpairs of the symmetric sparse matrix `a` (values
/// ascending, column j of `vectors` the unit eigenvector of values[j]).
/// Requires 1 <= k <= n. Eigenvector sign is arbitrary (as with any
/// eigensolver); repeated eigenvalues return an arbitrary orthonormal basis
/// of the eigenspace.
EigenDecomposition lanczos_smallest(const SparseMatrix& a, std::size_t k,
                                    const LanczosOptions& options = {});

/// Sparse counterpart of laplacian_embedding: builds the normalized
/// Laplacian M = D^{-1/2} (D - W) D^{-1/2} directly in CSR form from a
/// symmetric nonnegative sparse weight matrix W (diagonal entries ignored,
/// as in the dense path), solves for the k smallest eigenpairs with
/// Lanczos, and back-transforms u = D^{-1/2} v exactly like
/// generalized_symmetric_eigen does. Returns k columns, not n.
EigenDecomposition sparse_laplacian_embedding(
    const SparseMatrix& weights, std::size_t k,
    const GeneralizedEigenOptions& options = {},
    const LanczosOptions& lanczos = {});

/// Deterministic blocked dot product: partial sums over fixed 2048-element
/// blocks (computed in parallel when a pool is given) folded sequentially
/// in block order. Bit-identical for every thread count, including 1.
double deterministic_dot(std::span<const double> a, std::span<const double> b,
                         util::ThreadPool* pool = nullptr);

}  // namespace autoncs::linalg
