// Dense symmetric eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration (the classic EISPACK tred2/tql2 pair).
// Produces the full spectrum with eigenvalues in ascending order, which is
// exactly what the spectral-clustering embedding needs (Algorithms 1 and 2
// of the paper take the k smallest generalized eigenvectors).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace autoncs::linalg {

struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix. The input must be square
/// and symmetric (checked up to a loose tolerance). Throws CheckError on
/// shape violations and std::runtime_error if QL fails to converge (which
/// for symmetric input practically never happens within 50 sweeps).
EigenDecomposition symmetric_eigen(const Matrix& a);

}  // namespace autoncs::linalg
