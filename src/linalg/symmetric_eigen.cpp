#include "linalg/symmetric_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace autoncs::linalg {

namespace {

// Householder reduction of a real symmetric matrix (stored in z) to
// tridiagonal form; d receives the diagonal and e the subdiagonal
// (e[0] unused). On exit z holds the accumulated orthogonal transform.
// Classic tred2 (EISPACK / Numerical Recipes formulation).
void tred2(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

inline double pythag(double a, double b) {
  // sqrt(a^2 + b^2) without destructive overflow/underflow.
  const double absa = std::abs(a);
  const double absb = std::abs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

// QL with implicit shifts on a symmetric tridiagonal matrix; accumulates
// the rotations into z so its columns become the eigenvectors. Classic tql2.
void tql2(std::vector<double>& d, std::vector<double>& e, Matrix& z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        // The additive floor keeps the deflation test meaningful when both
        // neighbouring diagonal entries are zero (isolated graph nodes).
        if (std::abs(e[m]) <=
            std::numeric_limits<double>::epsilon() * dd + 1e-280)
          break;
      }
      if (m != l) {
        if (++iter == 50)
          throw std::runtime_error("tql2: too many QL iterations");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

// Cyclic Jacobi rotation method. Roughly an order of magnitude slower than
// tred2/tql2 but unconditionally convergent for symmetric input; used as a
// fallback when QL stalls (which can happen on graph Laplacians with many
// exactly-repeated eigenvalues).
void jacobi_eigen(Matrix& a, Matrix& v, std::vector<double>& d) {
  const std::size_t n = a.rows();
  v = Matrix::identity(n);
  constexpr std::size_t kMaxSweeps = 100;
  for (std::size_t sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);
        const double app = a(p, p);
        const double aqq = a(q, q);
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k != p && k != q) {
            const double akp = a(k, p);
            const double akq = a(k, q);
            a(k, p) = akp - s * (akq + tau * akp);
            a(p, k) = a(k, p);
            a(k, q) = akq + s * (akp - tau * akq);
            a(q, k) = a(k, q);
          }
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = vkp - s * (vkq + tau * vkp);
          v(k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
    }
  }
  d.resize(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
}

}  // namespace

EigenDecomposition symmetric_eigen(const Matrix& a) {
  AUTONCS_CHECK(a.rows() == a.cols(), "symmetric_eigen needs a square matrix");
  AUTONCS_CHECK(a.is_symmetric(1e-9), "symmetric_eigen needs a symmetric matrix");
  const std::size_t n = a.rows();
  EigenDecomposition out;
  if (n == 0) return out;

  Matrix z = a;
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  if (n == 1) {
    out.values = {a(0, 0)};
    out.vectors = Matrix::identity(1);
    return out;
  }
  try {
    tred2(z, d, e);
    tql2(d, e, z);
  } catch (const std::runtime_error&) {
    // QL stalled; fall back to the unconditionally convergent Jacobi method.
    Matrix work = a;
    jacobi_eigen(work, z, d);
  }

  // Sort ascending, permuting eigenvector columns along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d[i] < d[j]; });
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace autoncs::linalg
