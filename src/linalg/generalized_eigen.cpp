#include "linalg/generalized_eigen.hpp"

#include <cmath>

#include "util/check.hpp"

namespace autoncs::linalg {

EigenDecomposition generalized_symmetric_eigen(
    const Matrix& laplacian, const std::vector<double>& degrees,
    const GeneralizedEigenOptions& options) {
  const std::size_t n = laplacian.rows();
  AUTONCS_CHECK(laplacian.cols() == n, "Laplacian must be square");
  AUTONCS_CHECK(degrees.size() == n, "degree vector size must match");

  std::vector<double> inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) {
    AUTONCS_CHECK(degrees[i] >= 0.0, "degrees must be nonnegative");
    inv_sqrt[i] = 1.0 / std::sqrt(std::max(degrees[i], options.degree_floor));
  }

  // Symmetric similarity transform: M = D^{-1/2} L D^{-1/2}.
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      m(r, c) = inv_sqrt[r] * laplacian(r, c) * inv_sqrt[c];
  // Enforce exact symmetry against rounding in the transform.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (m(r, c) + m(c, r));
      m(r, c) = avg;
      m(c, r) = avg;
    }

  EigenDecomposition dec = symmetric_eigen(m);
  // Back-transform the eigenvectors: u = D^{-1/2} v.
  for (std::size_t j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dec.vectors(i, j) *= inv_sqrt[i];
      norm_sq += dec.vectors(i, j) * dec.vectors(i, j);
    }
    if (options.unit_normalize && norm_sq > 0.0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (std::size_t i = 0; i < n; ++i) dec.vectors(i, j) *= inv;
    }
  }
  return dec;
}

EigenDecomposition laplacian_embedding(const Matrix& weights,
                                       const GeneralizedEigenOptions& options) {
  const std::size_t n = weights.rows();
  AUTONCS_CHECK(weights.cols() == n, "weight matrix must be square");
  std::vector<double> degrees(n, 0.0);
  Matrix lap(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double deg = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == r) continue;  // self loops cancel in L = D - W
      const double w = weights(r, c);
      AUTONCS_DCHECK(w >= 0.0, "similarity weights must be nonnegative");
      lap(r, c) = -w;
      deg += w;
    }
    degrees[r] = deg;
    lap(r, r) = deg;
  }
  return generalized_symmetric_eigen(lap, degrees, options);
}

}  // namespace autoncs::linalg
