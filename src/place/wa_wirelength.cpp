#include "place/wa_wirelength.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace autoncs::place {

std::vector<double> pack_positions(const netlist::Netlist& netlist) {
  std::vector<double> state(netlist.cells.size() * 2);
  for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
    state[2 * c] = netlist.cells[c].x;
    state[2 * c + 1] = netlist.cells[c].y;
  }
  return state;
}

void unpack_positions(const std::vector<double>& state, netlist::Netlist& netlist) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
    netlist.cells[c].x = state[2 * c];
    netlist.cells[c].y = state[2 * c + 1];
  }
}

namespace {

/// Per-worker scratch for the cached max-shifted exponentials. thread_local
/// so the parallel phase-1 workers of WaModel::evaluate don't contend; the
/// capacity converges to the largest pin count seen, so steady-state calls
/// allocate nothing.
struct WaExpScratch {
  std::vector<double> a;
  std::vector<double> b;
};

WaExpScratch& wa_exp_scratch() {
  thread_local WaExpScratch scratch;
  return scratch;
}

}  // namespace

double wa_axis_terms(const std::vector<std::size_t>& pins,
                     const std::vector<double>& state, std::size_t axis,
                     double gamma, double weight, double* contrib) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Max-shifted exponentials: a_i = e^{(v-hi)/g}, b_i = e^{-(v-lo)/g}.
  // On the gradient path each pin's a/b is cached here so the loop below
  // reuses it instead of calling exp again — the stored values are the
  // same doubles, so value-only and gradient modes agree bit for bit.
  double* exp_a = nullptr;
  double* exp_b = nullptr;
  if (contrib != nullptr) {
    WaExpScratch& scratch = wa_exp_scratch();
    scratch.a.resize(pins.size());
    scratch.b.resize(pins.size());
    exp_a = scratch.a.data();
    exp_b = scratch.b.data();
  }
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t k = 0; k < pins.size(); ++k) {
    const double v = state[2 * pins[k] + axis];
    // exp(0) == 1.0 exactly (IEEE 754), so the extreme pins — both pins of
    // every two-pin wire — skip the libm call without changing a bit.
    const double ta = (v - hi) / gamma;
    const double tb = -(v - lo) / gamma;
    const double a = ta == 0.0 ? 1.0 : std::exp(ta);
    const double b = tb == 0.0 ? 1.0 : std::exp(tb);
    if (contrib != nullptr) {
      exp_a[k] = a;
      exp_b[k] = b;
    }
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;    // smooth max
  const double f_minus = sum_vb / sum_b;   // smooth min
  if (contrib != nullptr) {
    for (std::size_t k = 0; k < pins.size(); ++k) {
      const double v = state[2 * pins[k] + axis];
      const double d_plus = exp_a[k] / sum_a * (1.0 + (v - f_plus) / gamma);
      const double d_minus = exp_b[k] / sum_b * (1.0 - (v - f_minus) / gamma);
      contrib[k] = weight * (d_plus - d_minus);
    }
  }
  return f_plus - f_minus;
}

namespace {

/// Scatter form used on the sequential path: accumulates the gradient
/// terms directly (same terms, same order as the parallel reduction),
/// reusing the cached exponentials of the value pass.
double wa_axis(const std::vector<std::size_t>& pins,
               const std::vector<double>& state, std::size_t axis, double gamma,
               double weight, std::vector<double>* gradient) {
  if (gradient == nullptr) {
    return wa_axis_terms(pins, state, axis, gamma, weight, nullptr);
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  WaExpScratch& scratch = wa_exp_scratch();
  scratch.a.resize(pins.size());
  scratch.b.resize(pins.size());
  double* exp_a = scratch.a.data();
  double* exp_b = scratch.b.data();
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t k = 0; k < pins.size(); ++k) {
    const double v = state[2 * pins[k] + axis];
    const double ta = (v - hi) / gamma;
    const double tb = -(v - lo) / gamma;
    const double a = ta == 0.0 ? 1.0 : std::exp(ta);
    const double b = tb == 0.0 ? 1.0 : std::exp(tb);
    exp_a[k] = a;
    exp_b[k] = b;
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;
  const double f_minus = sum_vb / sum_b;
  for (std::size_t k = 0; k < pins.size(); ++k) {
    const double v = state[2 * pins[k] + axis];
    const double d_plus = exp_a[k] / sum_a * (1.0 + (v - f_plus) / gamma);
    const double d_minus = exp_b[k] / sum_b * (1.0 - (v - f_minus) / gamma);
    (*gradient)[2 * pins[k] + axis] += weight * (d_plus - d_minus);
  }
  return f_plus - f_minus;
}

/// Value pass that additionally records the acceptance-cache terms: the
/// per-pin max-shifted exponentials into exp_a / exp_b and
/// {f_plus, f_minus, sum_a, sum_b} into fp. FP operations are identical to
/// the value-only wa_axis_terms — the stores are of doubles it computes
/// anyway — so a cached trial value matches an uncached one bit for bit.
double wa_axis_fill(const std::vector<std::size_t>& pins,
                    const std::vector<double>& state, std::size_t axis,
                    double gamma, double* exp_a, double* exp_b, double* fp) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t k = 0; k < pins.size(); ++k) {
    const double v = state[2 * pins[k] + axis];
    const double ta = (v - hi) / gamma;
    const double tb = -(v - lo) / gamma;
    const double a = ta == 0.0 ? 1.0 : std::exp(ta);
    const double b = tb == 0.0 ? 1.0 : std::exp(tb);
    exp_a[k] = a;
    exp_b[k] = b;
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;
  const double f_minus = sum_vb / sum_b;
  fp[0] = f_plus;
  fp[1] = f_minus;
  fp[2] = sum_a;
  fp[3] = sum_b;
  return f_plus - f_minus;
}

/// Pre-optimization per-wire kernel (the engine as of the telemetry PR),
/// kept verbatim behind `WaModel::cached_kernels == false` so the
/// bench_perf_placer baseline pays the original costs: the gradient loop
/// recomputes every exponential instead of reusing the value pass, and
/// exp(0) goes through libm. Same inputs, same libm calls, same operation
/// order — the results are bit-identical to the cached kernel.
double wa_axis_legacy(const std::vector<std::size_t>& pins,
                      const std::vector<double>& state, std::size_t axis,
                      double gamma, double weight,
                      std::vector<double>* gradient) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    const double a = std::exp((v - hi) / gamma);
    const double b = std::exp(-(v - lo) / gamma);
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;
  const double f_minus = sum_vb / sum_b;
  if (gradient != nullptr) {
    for (std::size_t pin : pins) {
      const double v = state[2 * pin + axis];
      const double a = std::exp((v - hi) / gamma);
      const double b = std::exp(-(v - lo) / gamma);
      const double d_plus = a / sum_a * (1.0 + (v - f_plus) / gamma);
      const double d_minus = b / sum_b * (1.0 - (v - f_minus) / gamma);
      (*gradient)[2 * pin + axis] += weight * (d_plus - d_minus);
    }
  }
  return f_plus - f_minus;
}

/// Work per dispatched block of the pooled loops, sized so one block is
/// worth a wakeup: ~64 wires of exponentials, ~256 cells of gather adds.
constexpr std::size_t kWireGrain = 64;
constexpr std::size_t kCellGrain = 256;

}  // namespace

void WaModel::build_pin_index(const netlist::Netlist& netlist) const {
  const std::size_t cells = netlist.cells.size();
  const std::size_t wires = netlist.wires.size();
  const std::size_t entries = offsets_[wires];
  if (pin_index_cells_ == cells && pin_index_wires_ == wires &&
      pin_index_entries_ == entries && !cell_off_.empty()) {
    return;
  }
  cell_off_.assign(cells + 1, 0);
  for (const auto& wire : netlist.wires)
    for (std::size_t pin : wire.pins) ++cell_off_[pin + 1];
  for (std::size_t c = 0; c < cells; ++c) cell_off_[c + 1] += cell_off_[c];
  cell_wire_.resize(entries);
  cell_slot_.resize(entries);
  std::vector<std::size_t> cursor(cell_off_.begin(), cell_off_.end() - 1);
  // Scanning wires then pins in ascending order leaves every cell's entry
  // list sorted (wire, pin) ascending — the exact order the sequential
  // scatter loop adds into that cell's gradient entries.
  for (std::size_t w = 0; w < wires; ++w) {
    const auto& pins = netlist.wires[w].pins;
    for (std::size_t k = 0; k < pins.size(); ++k) {
      const std::size_t at = cursor[pins[k]]++;
      cell_wire_[at] = static_cast<std::uint32_t>(w);
      cell_slot_[at] = static_cast<std::uint32_t>(offsets_[w] + k);
    }
  }
  pin_index_cells_ = cells;
  pin_index_wires_ = wires;
  pin_index_entries_ = entries;
}

double WaModel::evaluate(const netlist::Netlist& netlist,
                         const std::vector<double>& state,
                         std::vector<double>* gradient,
                         util::ThreadPool* pool) const {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  AUTONCS_CHECK(gamma > 0.0, "gamma must be positive");
  if (gradient != nullptr) {
    AUTONCS_CHECK(gradient->size() == state.size(),
                  "gradient size must match the state");
  }
  const std::size_t wires = netlist.wires.size();
  const bool pooled = pool != nullptr && pool->size() > 1 && wires >= 2;
  if (!cached_kernels) {
    // Reference engine: original uncached kernel (sequential only — the
    // legacy baseline is a single-thread configuration).
    double total = 0.0;
    for (const auto& wire : netlist.wires) {
      total +=
          wire.weight *
          (wa_axis_legacy(wire.pins, state, 0, gamma, wire.weight, gradient) +
           wa_axis_legacy(wire.pins, state, 1, gamma, wire.weight, gradient));
    }
    return total;
  }

  offsets_.resize(wires + 1);
  offsets_[0] = 0;
  for (std::size_t w = 0; w < wires; ++w)
    offsets_[w + 1] = offsets_[w] + netlist.wires[w].pins.size();

  if (gradient != nullptr && cache_valid_ && cache_gamma_ == gamma &&
      cache_state_ == state) {
    // Acceptance replay: gradient at the exact point of the last
    // value-only evaluation (the accepted Armijo trial). Only the
    // gradient loops run, over the recorded exponentials and sums — the
    // identical doubles the full kernel would recompute. The pooled form
    // gathers per CELL through the inverse pin index: each gradient entry
    // receives exactly the additions of the sequential wire-major loop,
    // in the same (wire, pin) ascending order, so both forms are
    // bit-identical to an uncached evaluation.
    const auto replay_cell = [&](std::size_t c) {
      const double vx = state[2 * c];
      const double vy = state[2 * c + 1];
      for (std::size_t e = cell_off_[c]; e < cell_off_[c + 1]; ++e) {
        const std::size_t w = cell_wire_[e];
        const std::size_t slot = cell_slot_[e];
        const double weight = netlist.wires[w].weight;
        const double* fp = &cache_fp_[8 * w];
        const double dx_plus =
            cache_ax_[slot] / fp[2] * (1.0 + (vx - fp[0]) / gamma);
        const double dx_minus =
            cache_bx_[slot] / fp[3] * (1.0 - (vx - fp[1]) / gamma);
        (*gradient)[2 * c] += weight * (dx_plus - dx_minus);
        const double dy_plus =
            cache_ay_[slot] / fp[6] * (1.0 + (vy - fp[4]) / gamma);
        const double dy_minus =
            cache_by_[slot] / fp[7] * (1.0 - (vy - fp[5]) / gamma);
        (*gradient)[2 * c + 1] += weight * (dy_plus - dy_minus);
      }
    };
    if (pooled) {
      build_pin_index(netlist);
      pool->parallel_for(
          netlist.cells.size(),
          [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
            for (std::size_t c = begin; c < end; ++c) replay_cell(c);
          },
          kCellGrain);
    } else {
      for (std::size_t w = 0; w < wires; ++w) {
        const auto& wire = netlist.wires[w];
        const std::size_t off = offsets_[w];
        const double* fp = &cache_fp_[8 * w];
        for (std::size_t k = 0; k < wire.pins.size(); ++k) {
          const double v = state[2 * wire.pins[k]];
          const double d_plus =
              cache_ax_[off + k] / fp[2] * (1.0 + (v - fp[0]) / gamma);
          const double d_minus =
              cache_bx_[off + k] / fp[3] * (1.0 - (v - fp[1]) / gamma);
          (*gradient)[2 * wire.pins[k]] += wire.weight * (d_plus - d_minus);
        }
        for (std::size_t k = 0; k < wire.pins.size(); ++k) {
          const double v = state[2 * wire.pins[k] + 1];
          const double d_plus =
              cache_ay_[off + k] / fp[6] * (1.0 + (v - fp[4]) / gamma);
          const double d_minus =
              cache_by_[off + k] / fp[7] * (1.0 - (v - fp[5]) / gamma);
          (*gradient)[2 * wire.pins[k] + 1] += wire.weight * (d_plus - d_minus);
        }
      }
    }
    // The cached total IS the fold of wire.weight * ((fp0-fp1)+(fp4-fp5))
    // in wire order — recomputing it would reproduce it bit for bit.
    return cache_value_;
  }

  if (gradient == nullptr) {
    // Value-only trial: fill the acceptance cache as a side effect. Each
    // wire owns its cache slots, so the fill parallelizes; the total is
    // folded sequentially in wire order (the FP operation order of the
    // single-thread loop, independent of the thread count).
    cache_fp_.resize(8 * wires);
    cache_ax_.resize(offsets_[wires]);
    cache_bx_.resize(offsets_[wires]);
    cache_ay_.resize(offsets_[wires]);
    cache_by_.resize(offsets_[wires]);
    cache_valid_ = false;
    const auto fill_wire = [&](std::size_t w) {
      const auto& wire = netlist.wires[w];
      const std::size_t off = offsets_[w];
      double* fp = &cache_fp_[8 * w];
      return wire.weight *
             (wa_axis_fill(wire.pins, state, 0, gamma, &cache_ax_[off],
                           &cache_bx_[off], fp) +
              wa_axis_fill(wire.pins, state, 1, gamma, &cache_ay_[off],
                           &cache_by_[off], fp + 4));
    };
    double total = 0.0;
    if (pooled) {
      wire_value_.resize(wires);
      pool->parallel_for(
          wires,
          [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
            for (std::size_t w = begin; w < end; ++w)
              wire_value_[w] = fill_wire(w);
          },
          kWireGrain);
      for (std::size_t w = 0; w < wires; ++w) total += wire_value_[w];
    } else {
      for (std::size_t w = 0; w < wires; ++w) total += fill_wire(w);
    }
    cache_state_ = state;
    cache_gamma_ = gamma;
    cache_value_ = total;
    cache_valid_ = true;
    return total;
  }

  if (!pooled) {
    double total = 0.0;
    for (const auto& wire : netlist.wires) {
      total += wire.weight *
               (wa_axis(wire.pins, state, 0, gamma, wire.weight, gradient) +
                wa_axis(wire.pins, state, 1, gamma, wire.weight, gradient));
    }
    return total;
  }

  // Full gradient evaluation off the cache (e.g. the lambda_0 probe).
  // Phase 1 (parallel): each wire computes its value and per-pin gradient
  // terms into its own slots.
  wire_value_.resize(wires);
  contrib_x_.resize(offsets_[wires]);
  contrib_y_.resize(offsets_[wires]);
  pool->parallel_for(
      wires,
      [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        for (std::size_t w = begin; w < end; ++w) {
          const auto& wire = netlist.wires[w];
          double* cx = contrib_x_.data() + offsets_[w];
          double* cy = contrib_y_.data() + offsets_[w];
          wire_value_[w] =
              wire.weight *
              (wa_axis_terms(wire.pins, state, 0, gamma, wire.weight, cx) +
               wa_axis_terms(wire.pins, state, 1, gamma, wire.weight, cy));
        }
      },
      kWireGrain);

  // Phase 2: the total folds sequentially in wire order; the gradient is
  // gathered in parallel per cell — entry (wire, pin) ascending, the
  // identical addition sequence of the sequential scatter.
  build_pin_index(netlist);
  pool->parallel_for(
      netlist.cells.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        for (std::size_t c = begin; c < end; ++c) {
          for (std::size_t e = cell_off_[c]; e < cell_off_[c + 1]; ++e) {
            (*gradient)[2 * c] += contrib_x_[cell_slot_[e]];
            (*gradient)[2 * c + 1] += contrib_y_[cell_slot_[e]];
          }
        }
      },
      kCellGrain);
  double total = 0.0;
  for (std::size_t w = 0; w < wires; ++w) total += wire_value_[w];
  return total;
}

namespace {

double hpwl_impl(const netlist::Netlist& netlist, const std::vector<double>& state,
                 bool weighted) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  double total = 0.0;
  for (const auto& wire : netlist.wires) {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    for (std::size_t pin : wire.pins) {
      min_x = std::min(min_x, state[2 * pin]);
      max_x = std::max(max_x, state[2 * pin]);
      min_y = std::min(min_y, state[2 * pin + 1]);
      max_y = std::max(max_y, state[2 * pin + 1]);
    }
    const double length = (max_x - min_x) + (max_y - min_y);
    total += weighted ? wire.weight * length : length;
  }
  return total;
}

}  // namespace

double weighted_hpwl(const netlist::Netlist& netlist,
                     const std::vector<double>& state) {
  return hpwl_impl(netlist, state, true);
}

double hpwl(const netlist::Netlist& netlist, const std::vector<double>& state) {
  return hpwl_impl(netlist, state, false);
}

}  // namespace autoncs::place
