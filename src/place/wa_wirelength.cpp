#include "place/wa_wirelength.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace autoncs::place {

std::vector<double> pack_positions(const netlist::Netlist& netlist) {
  std::vector<double> state(netlist.cells.size() * 2);
  for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
    state[2 * c] = netlist.cells[c].x;
    state[2 * c + 1] = netlist.cells[c].y;
  }
  return state;
}

void unpack_positions(const std::vector<double>& state, netlist::Netlist& netlist) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
    netlist.cells[c].x = state[2 * c];
    netlist.cells[c].y = state[2 * c + 1];
  }
}

namespace {

/// One-dimensional WA term for a wire along one axis. When `contrib` is
/// nonnull, writes the k-th pin's gradient term (scaled by `weight`) into
/// contrib[k] instead of scattering into a global gradient — the parallel
/// phase-1 form. `wa_axis` below keeps the original scatter form; both
/// compute each term with identical FP operations.
double wa_axis_terms(const std::vector<std::size_t>& pins,
                     const std::vector<double>& state, std::size_t axis,
                     double gamma, double weight, double* contrib) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Max-shifted exponentials: a_i = e^{(v-hi)/g}, b_i = e^{-(v-lo)/g}.
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    const double a = std::exp((v - hi) / gamma);
    const double b = std::exp(-(v - lo) / gamma);
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;    // smooth max
  const double f_minus = sum_vb / sum_b;   // smooth min
  if (contrib != nullptr) {
    for (std::size_t k = 0; k < pins.size(); ++k) {
      const double v = state[2 * pins[k] + axis];
      const double a = std::exp((v - hi) / gamma);
      const double b = std::exp(-(v - lo) / gamma);
      const double d_plus = a / sum_a * (1.0 + (v - f_plus) / gamma);
      const double d_minus = b / sum_b * (1.0 - (v - f_minus) / gamma);
      contrib[k] = weight * (d_plus - d_minus);
    }
  }
  return f_plus - f_minus;
}

/// Scatter form used on the sequential path: accumulates the gradient
/// terms directly (same terms, same order as the parallel reduction).
double wa_axis(const std::vector<std::size_t>& pins,
               const std::vector<double>& state, std::size_t axis, double gamma,
               double weight, std::vector<double>* gradient) {
  if (gradient == nullptr) {
    return wa_axis_terms(pins, state, axis, gamma, weight, nullptr);
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double sum_a = 0.0;
  double sum_va = 0.0;
  double sum_b = 0.0;
  double sum_vb = 0.0;
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    const double a = std::exp((v - hi) / gamma);
    const double b = std::exp(-(v - lo) / gamma);
    sum_a += a;
    sum_va += v * a;
    sum_b += b;
    sum_vb += v * b;
  }
  const double f_plus = sum_va / sum_a;
  const double f_minus = sum_vb / sum_b;
  for (std::size_t pin : pins) {
    const double v = state[2 * pin + axis];
    const double a = std::exp((v - hi) / gamma);
    const double b = std::exp(-(v - lo) / gamma);
    const double d_plus = a / sum_a * (1.0 + (v - f_plus) / gamma);
    const double d_minus = b / sum_b * (1.0 - (v - f_minus) / gamma);
    (*gradient)[2 * pin + axis] += weight * (d_plus - d_minus);
  }
  return f_plus - f_minus;
}

}  // namespace

double WaModel::evaluate(const netlist::Netlist& netlist,
                         const std::vector<double>& state,
                         std::vector<double>* gradient,
                         util::ThreadPool* pool) const {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  AUTONCS_CHECK(gamma > 0.0, "gamma must be positive");
  if (gradient != nullptr) {
    AUTONCS_CHECK(gradient->size() == state.size(),
                  "gradient size must match the state");
  }
  const std::size_t wires = netlist.wires.size();
  if (pool == nullptr || pool->size() == 1 || wires < 2) {
    double total = 0.0;
    for (const auto& wire : netlist.wires) {
      total += wire.weight *
               (wa_axis(wire.pins, state, 0, gamma, wire.weight, gradient) +
                wa_axis(wire.pins, state, 1, gamma, wire.weight, gradient));
    }
    return total;
  }

  // Phase 1 (parallel): each wire computes its value and per-pin gradient
  // terms into its own slots.
  offsets_.resize(wires + 1);
  offsets_[0] = 0;
  for (std::size_t w = 0; w < wires; ++w)
    offsets_[w + 1] = offsets_[w] + netlist.wires[w].pins.size();
  wire_value_.resize(wires);
  if (gradient != nullptr) {
    contrib_x_.resize(offsets_[wires]);
    contrib_y_.resize(offsets_[wires]);
  }
  pool->parallel_for(
      wires, [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        for (std::size_t w = begin; w < end; ++w) {
          const auto& wire = netlist.wires[w];
          double* cx = gradient ? contrib_x_.data() + offsets_[w] : nullptr;
          double* cy = gradient ? contrib_y_.data() + offsets_[w] : nullptr;
          wire_value_[w] =
              wire.weight *
              (wa_axis_terms(wire.pins, state, 0, gamma, wire.weight, cx) +
               wa_axis_terms(wire.pins, state, 1, gamma, wire.weight, cy));
        }
      });

  // Phase 2 (sequential reduction in wire order — the FP operation order
  // of the single-thread loop, independent of the thread count).
  double total = 0.0;
  for (std::size_t w = 0; w < wires; ++w) {
    const auto& wire = netlist.wires[w];
    if (gradient != nullptr) {
      for (std::size_t k = 0; k < wire.pins.size(); ++k)
        (*gradient)[2 * wire.pins[k]] += contrib_x_[offsets_[w] + k];
      for (std::size_t k = 0; k < wire.pins.size(); ++k)
        (*gradient)[2 * wire.pins[k] + 1] += contrib_y_[offsets_[w] + k];
    }
    total += wire_value_[w];
  }
  return total;
}

namespace {

double hpwl_impl(const netlist::Netlist& netlist, const std::vector<double>& state,
                 bool weighted) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  double total = 0.0;
  for (const auto& wire : netlist.wires) {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    for (std::size_t pin : wire.pins) {
      min_x = std::min(min_x, state[2 * pin]);
      max_x = std::max(max_x, state[2 * pin]);
      min_y = std::min(min_y, state[2 * pin + 1]);
      max_y = std::max(max_y, state[2 * pin + 1]);
    }
    const double length = (max_x - min_x) + (max_y - min_y);
    total += weighted ? wire.weight * length : length;
  }
  return total;
}

}  // namespace

double weighted_hpwl(const netlist::Netlist& netlist,
                     const std::vector<double>& state) {
  return hpwl_impl(netlist, state, true);
}

double hpwl(const netlist::Netlist& netlist, const std::vector<double>& state) {
  return hpwl_impl(netlist, state, false);
}

}  // namespace autoncs::place
