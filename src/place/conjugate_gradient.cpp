#include "place/conjugate_gradient.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace autoncs::place {

namespace {

double infinity_norm(const std::vector<double>& v) {
  double out = 0.0;
  for (double x : v) out = std::max(out, std::abs(x));
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

CgResult minimize_cg(std::vector<double>& x, const Objective& objective,
                     const CgOptions& options) {
  AUTONCS_CHECK(!x.empty(), "cannot optimize an empty state");
  const std::size_t n = x.size();

  std::vector<double> grad(n, 0.0);
  std::vector<double> prev_grad(n, 0.0);
  std::vector<double> direction(n, 0.0);
  std::vector<double> trial(n, 0.0);
  std::vector<double> trial_grad(n, 0.0);

  CgResult result;
  const auto eval = [&](const std::vector<double>& point,
                        std::vector<double>* gradient) {
    ++result.value_evaluations;
    if (gradient != nullptr) ++result.gradient_evaluations;
    return objective(point, gradient);
  };

  double value = eval(x, &grad);
  result.value = value;
  result.gradient_infinity_norm = infinity_norm(grad);
  if (result.gradient_infinity_norm <= options.gradient_tolerance) {
    result.converged = true;
    return result;
  }
  for (std::size_t i = 0; i < n; ++i) direction[i] = -grad[i];
  double step = options.initial_step;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    double slope = dot(grad, direction);
    if (slope >= 0.0) {
      // Direction lost descent property — restart with steepest descent.
      for (std::size_t i = 0; i < n; ++i) direction[i] = -grad[i];
      slope = dot(grad, direction);
      if (slope >= 0.0) break;  // gradient numerically zero
    }

    // Armijo backtracking line search. With value_only_trials the Armijo
    // test sees the same values as the legacy engine (identical FP ops),
    // so the same trial is accepted; the gradient is then computed once,
    // at the accepted point only.
    double t = step;
    double trial_value = value;
    bool accepted = false;
    for (std::size_t bt = 0; bt < options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = x[i] + t * direction[i];
      trial_value =
          eval(trial, options.value_only_trials ? nullptr : &trial_grad);
      if (trial_value <= value + options.armijo_c1 * t * slope) {
        accepted = true;
        break;
      }
      t *= options.backtrack;
    }
    if (!accepted) break;  // no progress possible along this direction
    if (options.value_only_trials) {
      // Gradient at the accepted point. The returned value is bit-identical
      // to trial_value (same FP operations), so trial_value is kept.
      eval(trial, &trial_grad);
    }

    x.swap(trial);
    prev_grad.swap(grad);
    grad.swap(trial_grad);
    value = trial_value;
    // Grow the next initial step moderately so the search adapts to scale.
    step = std::max(t * 2.0, 1e-12);

    result.value = value;
    result.gradient_infinity_norm = infinity_norm(grad);
    if (result.gradient_infinity_norm <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Polak-Ribiere+ beta.
    double gg = dot(prev_grad, prev_grad);
    if (gg <= 0.0) break;
    double beta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      beta += grad[i] * (grad[i] - prev_grad[i]);
    beta = std::max(0.0, beta / gg);
    for (std::size_t i = 0; i < n; ++i)
      direction[i] = -grad[i] + beta * direction[i];
  }
  return result;
}

}  // namespace autoncs::place
