#include "place/conjugate_gradient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/fault.hpp"

namespace autoncs::place {

namespace {

double infinity_norm(const std::vector<double>& v) {
  double out = 0.0;
  for (double x : v) out = std::max(out, std::abs(x));
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

CgResult minimize_cg(std::vector<double>& x, const Objective& objective,
                     const CgOptions& options) {
  AUTONCS_CHECK(!x.empty(), "cannot optimize an empty state");
  const std::size_t n = x.size();

  std::vector<double> grad(n, 0.0);
  std::vector<double> prev_grad(n, 0.0);
  std::vector<double> direction(n, 0.0);
  std::vector<double> trial(n, 0.0);
  std::vector<double> trial_grad(n, 0.0);

  // Elementwise updates go through the pool when the vector is large
  // enough that a block of work is worth a worker wakeup; below the grain
  // parallel_for runs the whole range inline on the caller.
  util::ThreadPool* pool =
      (options.pool != nullptr && options.pool->size() > 1) ? options.pool
                                                            : nullptr;
  constexpr std::size_t kElementGrain = 2048;
  const auto elementwise = [&](auto&& fn) {
    if (pool == nullptr) {
      fn(0, n);
      return;
    }
    pool->parallel_for(
        n,
        [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
          fn(begin, end);
        },
        kElementGrain);
  };

  CgResult result;
  const auto eval = [&](const std::vector<double>& point,
                        std::vector<double>* gradient) {
    ++result.value_evaluations;
    if (gradient != nullptr) ++result.gradient_evaluations;
    double v = objective(point, gradient);
    if (AUTONCS_FAULT_POINT("cg.nan"))
      v = std::numeric_limits<double>::quiet_NaN();
    if (gradient != nullptr && !gradient->empty() &&
        AUTONCS_FAULT_POINT("cg.grad_nan"))
      (*gradient)[0] = std::numeric_limits<double>::quiet_NaN();
    return v;
  };
  const auto record = [&](const char* point, const char* action,
                          bool recovered, bool alters_result,
                          std::string detail) {
    if (options.recovery != nullptr)
      options.recovery->record({"placement", point, action, recovered,
                                alters_result, std::move(detail)});
  };
  // One transparent retry of a non-finite evaluation. The retry bypasses
  // the evaluation counters so a genuine (deterministic) NaN or a normal
  // line-search overshoot to +inf leaves the reported work identical to a
  // guard-free build; only a transient fault that the retry actually
  // repaired is recorded. Capped so a persistently non-finite objective
  // cannot double the evaluation cost of a whole line search.
  std::size_t retries_left = 4;
  const auto retry_if_bad = [&](double v, const std::vector<double>& point,
                                std::vector<double>* gradient) {
    const bool bad =
        !std::isfinite(v) || (gradient != nullptr && !all_finite(*gradient));
    if (!bad || retries_left == 0) return v;
    --retries_left;
    const double again = objective(point, gradient);
    const bool repaired =
        std::isfinite(again) && (gradient == nullptr || all_finite(*gradient));
    if (repaired) {
      record(std::isfinite(v) ? "cg.grad_nan" : "cg.nan", "retry", true,
             false, "non-finite evaluation repaired by retry");
      return again;
    }
    return v;
  };

  double value = eval(x, &grad);
  value = retry_if_bad(value, x, &grad);
  if (!std::isfinite(value) || !all_finite(grad)) {
    record("cg.nan", "retry", false, false,
           "objective non-finite at the starting point");
    throw util::NumericalError(
        "numerical.cg_init", "placement",
        "objective is non-finite at the starting point");
  }
  result.value = value;
  result.gradient_infinity_norm = infinity_norm(grad);
  if (result.gradient_infinity_norm <= options.gradient_tolerance) {
    result.converged = true;
    return result;
  }
  elementwise([&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) direction[i] = -grad[i];
  });
  double step = options.initial_step;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    double slope = dot(grad, direction);
    if (slope >= 0.0) {
      // Direction lost descent property — restart with steepest descent.
      elementwise([&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) direction[i] = -grad[i];
      });
      slope = dot(grad, direction);
      if (slope >= 0.0) break;  // gradient numerically zero
    }

    // Armijo backtracking line search. With value_only_trials the Armijo
    // test sees the same values as the legacy engine (identical FP ops),
    // so the same trial is accepted; the gradient is then computed once,
    // at the accepted point only.
    double t = step;
    double trial_value = value;
    bool accepted = false;
    for (std::size_t bt = 0; bt < options.max_backtracks; ++bt) {
      elementwise([&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          trial[i] = x[i] + t * direction[i];
      });
      std::vector<double>* tg =
          options.value_only_trials ? nullptr : &trial_grad;
      trial_value = eval(trial, tg);
      trial_value = retry_if_bad(trial_value, trial, tg);
      // A non-finite trial can never show sufficient decrease. NaN and +inf
      // already fail the comparison on their own (a plain line-search
      // overshoot rejects exactly as it always did); the explicit isfinite
      // additionally rejects -inf, which would vacuously pass while meaning
      // the objective diverged.
      if (std::isfinite(trial_value) &&
          trial_value <= value + options.armijo_c1 * t * slope) {
        accepted = true;
        break;
      }
      t *= options.backtrack;
    }
    if (!accepted) break;  // no progress possible along this direction
    if (options.value_only_trials) {
      // Gradient at the accepted point. The returned value is bit-identical
      // to trial_value (same FP operations), so trial_value is kept.
      const double v = eval(trial, &trial_grad);
      if (!all_finite(trial_grad)) retry_if_bad(v, trial, &trial_grad);
    }
    if (!all_finite(trial_grad)) {
      // Gradient still non-finite at the accepted point: discard the trial
      // and take a damped steepest-descent restart from the last finite
      // iterate (x, grad and value are untouched and finite).
      ++result.recovery_restarts;
      const bool exhausted =
          result.recovery_restarts > options.max_recovery_restarts;
      record("cg.grad_nan", "damped_restart", !exhausted, true,
             "non-finite gradient at accepted point, restart " +
                 std::to_string(result.recovery_restarts));
      if (exhausted) {
        result.degraded = true;
        break;
      }
      elementwise([&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) direction[i] = -grad[i];
      });
      step = std::max(t * 0.25, 1e-12);
      continue;
    }

    x.swap(trial);
    prev_grad.swap(grad);
    grad.swap(trial_grad);
    value = trial_value;
    // Grow the next initial step moderately so the search adapts to scale.
    step = std::max(t * 2.0, 1e-12);

    result.value = value;
    result.gradient_infinity_norm = infinity_norm(grad);
    if (result.gradient_infinity_norm <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Polak-Ribiere+ beta.
    double gg = dot(prev_grad, prev_grad);
    if (gg <= 0.0) break;
    double beta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      beta += grad[i] * (grad[i] - prev_grad[i]);
    beta = std::max(0.0, beta / gg);
    elementwise([&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        direction[i] = -grad[i] + beta * direction[i];
    });
  }
  return result;
}

}  // namespace autoncs::place
