// Detailed-placement refinement (extension beyond Alg. 4).
//
// After global placement + legalization, a greedy improvement pass mops up
// the local suboptimality the analytic solver leaves behind:
//  * swap two equal-footprint cells when that lowers the weighted HPWL of
//    their incident wires (legality is preserved trivially), and
//  * relocate a cell toward the weighted median of its connected pins when
//    the spot is free.
// Deterministic sweeps; stops when a pass makes no improvement.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace autoncs::place {

struct RefineOptions {
  std::size_t max_passes = 8;
  /// Swap-candidate search radius around each cell (um).
  double swap_radius_um = 25.0;
  /// Virtual-width factor for legality checks (match the placer's omega).
  double omega = 1.2;
  /// Two cells are swap-compatible when their widths and heights differ by
  /// no more than this (um) — the swap then cannot create overlap.
  double footprint_tolerance_um = 1e-9;
};

struct RefineReport {
  std::size_t passes = 0;
  std::size_t swaps = 0;
  std::size_t moves = 0;
  double weighted_hpwl_before = 0.0;
  double weighted_hpwl_after = 0.0;
};

/// Improves the placement in-place; never increases the weighted HPWL and
/// never introduces new overlap.
RefineReport refine_placement(netlist::Netlist& netlist,
                              const RefineOptions& options = {});

}  // namespace autoncs::place
