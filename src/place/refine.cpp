#include "place/refine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "place/wa_wirelength.hpp"
#include "util/check.hpp"

namespace autoncs::place {

namespace {

/// Weighted HPWL of one wire given current cell positions.
double wire_hpwl(const netlist::Netlist& net, const netlist::Wire& wire) {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = min_x;
  double max_y = -min_x;
  for (std::size_t pin : wire.pins) {
    min_x = std::min(min_x, net.cells[pin].x);
    max_x = std::max(max_x, net.cells[pin].x);
    min_y = std::min(min_y, net.cells[pin].y);
    max_y = std::max(max_y, net.cells[pin].y);
  }
  return wire.weight * ((max_x - min_x) + (max_y - min_y));
}

/// Sum over the wires incident to one or two cells (deduplicated).
double incident_cost(const netlist::Netlist& net,
                     const std::vector<std::vector<std::size_t>>& wires_of,
                     std::size_t a, std::size_t b) {
  double cost = 0.0;
  for (std::size_t w : wires_of[a]) cost += wire_hpwl(net, net.wires[w]);
  if (b != a) {
    for (std::size_t w : wires_of[b]) {
      // Skip wires already counted through a.
      bool shared = false;
      for (std::size_t wa : wires_of[a]) {
        if (wa == w) {
          shared = true;
          break;
        }
      }
      if (!shared) cost += wire_hpwl(net, net.wires[w]);
    }
  }
  return cost;
}

bool overlaps_anyone(const netlist::Netlist& net, std::size_t cell,
                     double x, double y, double omega) {
  const auto& c = net.cells[cell];
  const double hw = 0.5 * omega * c.width;
  const double hh = 0.5 * omega * c.height;
  for (std::size_t other = 0; other < net.cells.size(); ++other) {
    if (other == cell) continue;
    const auto& o = net.cells[other];
    const double tx = hw + 0.5 * omega * o.width;
    const double ty = hh + 0.5 * omega * o.height;
    if (std::abs(x - o.x) < tx && std::abs(y - o.y) < ty) return true;
  }
  return false;
}

}  // namespace

RefineReport refine_placement(netlist::Netlist& netlist,
                              const RefineOptions& options) {
  AUTONCS_CHECK(netlist.validate().empty(), "netlist failed validation");
  RefineReport report;
  const std::size_t n = netlist.cells.size();
  if (n < 2) return report;

  // Incidence: wires touching each cell.
  std::vector<std::vector<std::size_t>> wires_of(n);
  for (std::size_t w = 0; w < netlist.wires.size(); ++w)
    for (std::size_t pin : netlist.wires[w].pins) wires_of[pin].push_back(w);

  const auto state = pack_positions(netlist);
  report.weighted_hpwl_before = weighted_hpwl(netlist, state);

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    report.passes = pass + 1;
    bool improved = false;

    for (std::size_t a = 0; a < n; ++a) {
      if (wires_of[a].empty()) continue;

      // Candidate 1: swap with an equal-footprint cell within the radius.
      for (std::size_t b = a + 1; b < n; ++b) {
        const auto& ca = netlist.cells[a];
        const auto& cb = netlist.cells[b];
        if (std::abs(ca.width - cb.width) > options.footprint_tolerance_um ||
            std::abs(ca.height - cb.height) > options.footprint_tolerance_um) {
          continue;
        }
        if (std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y) >
            options.swap_radius_um) {
          continue;
        }
        const double before = incident_cost(netlist, wires_of, a, b);
        std::swap(netlist.cells[a].x, netlist.cells[b].x);
        std::swap(netlist.cells[a].y, netlist.cells[b].y);
        const double after = incident_cost(netlist, wires_of, a, b);
        if (after + 1e-12 < before) {
          ++report.swaps;
          improved = true;
        } else {
          std::swap(netlist.cells[a].x, netlist.cells[b].x);
          std::swap(netlist.cells[a].y, netlist.cells[b].y);
        }
      }

      // Candidate 2: relocate toward the weighted median of connected pins
      // if the spot is free of overlap.
      double sum_w = 0.0;
      double target_x = 0.0;
      double target_y = 0.0;
      for (std::size_t w : wires_of[a]) {
        const auto& wire = netlist.wires[w];
        for (std::size_t pin : wire.pins) {
          if (pin == a) continue;
          sum_w += wire.weight;
          target_x += wire.weight * netlist.cells[pin].x;
          target_y += wire.weight * netlist.cells[pin].y;
        }
      }
      if (sum_w <= 0.0) continue;
      target_x /= sum_w;
      target_y /= sum_w;
      const double old_x = netlist.cells[a].x;
      const double old_y = netlist.cells[a].y;
      if (std::abs(target_x - old_x) + std::abs(target_y - old_y) < 1e-9)
        continue;
      if (overlaps_anyone(netlist, a, target_x, target_y, options.omega))
        continue;
      const double before = incident_cost(netlist, wires_of, a, a);
      netlist.cells[a].x = target_x;
      netlist.cells[a].y = target_y;
      const double after = incident_cost(netlist, wires_of, a, a);
      if (after + 1e-12 < before) {
        ++report.moves;
        improved = true;
      } else {
        netlist.cells[a].x = old_x;
        netlist.cells[a].y = old_y;
      }
    }
    if (!improved) break;
  }

  const auto final_state = pack_positions(netlist);
  report.weighted_hpwl_after = weighted_hpwl(netlist, final_state);
  return report;
}

}  // namespace autoncs::place
