// Flat-array uniform grid over cell centers — the reusable replacement for
// the per-evaluation `unordered_map` spatial hash the density model used to
// rebuild on every objective call.
//
// Cells are binned by center into a dense row-major bucket table via a
// stable counting sort (two O(n) passes into pre-allocated buffers), so a
// rebuild performs no per-cell allocation and a bucket probe is one array
// index instead of a hash lookup. When the bin bounding box is too large
// for a dense table (cells at extreme coordinates), the grid degrades to a
// sorted sparse bucket list probed by binary search — exact 64-bit bin
// coordinates either way, which removes the 32-bit `pack` truncation of the
// legacy hash (far-apart bins can no longer alias into one bucket).
//
// Candidate enumeration order is the contract: `for_candidates` scans the
// same dx-outer / dy-inner bucket window as the legacy hash and yields the
// cells of each bucket in ascending index (the hash's insertion order), so
// every consumer folds pair terms in the identical FP operation order and
// results stay bit-identical.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

class UniformGrid {
 public:
  /// Rebins all cells of `netlist` at the positions in `state`. Queries
  /// must use the same `interaction_reach` the grid was built with. `pool`
  /// parallelizes the per-cell bin-coordinate pass; the counting sort is
  /// sequential (O(n + buckets), stable in cell index). Buffers are reused
  /// across builds — steady-state rebuilds allocate nothing.
  ///
  /// `aux_a` / `aux_b` (optional, length n) are per-cell payloads packed
  /// next to each cell's coordinates in bucket order, so a
  /// `for_candidates_packed` scan streams {x, y, aux_a, aux_b} from one
  /// contiguous array instead of gathering through the cell index — the
  /// packed doubles are copies of the caller's values, so consumers see
  /// the identical bits either way.
  void build(const netlist::Netlist& netlist, const std::vector<double>& state,
             double interaction_reach, double bucket,
             util::ThreadPool* pool = nullptr, const double* aux_a = nullptr,
             const double* aux_b = nullptr);

  /// Calls fn(j) for every cell j > i whose center lies within the
  /// interaction reach of (xi, yi) (conservative superset — same bucket
  /// window as the legacy spatial hash, same candidate order).
  ///
  /// The probe visits buckets dx-outer / dy-inner like the hash, but the
  /// dense table is laid out x-major, so the dy column at each dx is ONE
  /// contiguous CSR slot range — the whole column streams through a single
  /// tight loop (and the sparse list, sorted by (bx, by), is likewise one
  /// lower_bound per column). The candidate sequence is identical to
  /// probing the 2 * span + 1 buckets individually.
  template <typename Fn>
  void for_candidates(std::size_t i, double xi, double yi, Fn&& fn) const {
    const auto span = static_cast<long long>(std::ceil(reach_ / bucket_));
    const long long bx = bin_coord(xi);
    const long long by = bin_coord(yi);
    for (long long dx = -span; dx <= span; ++dx) {
      const long long cx = bx + dx;
      if (dense_) {
        if (cx < min_x_ || cx > max_x_) continue;
        const long long lo = std::max(by - span, min_y_);
        const long long hi = std::min(by + span, max_y_);
        if (lo > hi) continue;
        const std::size_t base = static_cast<std::size_t>(cx - min_x_) * ny_;
        const std::uint32_t begin =
            starts_[base + static_cast<std::size_t>(lo - min_y_)];
        const std::uint32_t end =
            starts_[base + static_cast<std::size_t>(hi - min_y_) + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
          const std::size_t j = ids_[k];
          if (j > i) fn(j);
        }
      } else {
        auto it = std::lower_bound(
            entries_.begin(), entries_.end(), std::make_pair(cx, by - span),
            [](const SparseEntry& e, const std::pair<long long, long long>& k) {
              return e.bx != k.first ? e.bx < k.first : e.by < k.second;
            });
        for (; it != entries_.end() && it->bx == cx && it->by <= by + span;
             ++it) {
          const std::size_t j = it->id;
          if (j > i) fn(j);
        }
      }
    }
  }

  /// Like for_candidates, but also hands fn the candidate's packed slot
  /// {x, y, aux_a, aux_b} (see build). Candidate order is identical to
  /// for_candidates; the slot holds copies of the build-time values.
  template <typename Fn>
  void for_candidates_packed(std::size_t i, double xi, double yi,
                             Fn&& fn) const {
    const auto span = static_cast<long long>(std::ceil(reach_ / bucket_));
    const long long bx = bin_coord(xi);
    const long long by = bin_coord(yi);
    for (long long dx = -span; dx <= span; ++dx) {
      const long long cx = bx + dx;
      if (dense_) {
        if (cx < min_x_ || cx > max_x_) continue;
        const long long lo = std::max(by - span, min_y_);
        const long long hi = std::min(by + span, max_y_);
        if (lo > hi) continue;
        const std::size_t base = static_cast<std::size_t>(cx - min_x_) * ny_;
        const std::uint32_t begin =
            starts_[base + static_cast<std::size_t>(lo - min_y_)];
        const std::uint32_t end =
            starts_[base + static_cast<std::size_t>(hi - min_y_) + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
          const std::size_t j = ids_[k];
          if (j > i) fn(j, &packed_[4 * k]);
        }
      } else {
        auto it = std::lower_bound(
            entries_.begin(), entries_.end(), std::make_pair(cx, by - span),
            [](const SparseEntry& e, const std::pair<long long, long long>& k) {
              return e.bx != k.first ? e.bx < k.first : e.by < k.second;
            });
        for (; it != entries_.end() && it->bx == cx && it->by <= by + span;
             ++it) {
          const std::size_t j = it->id;
          const auto k = static_cast<std::size_t>(it - entries_.begin());
          if (j > i) fn(j, &packed_[4 * k]);
        }
      }
    }
  }

  /// Times build() ran over the lifetime of this grid.
  std::size_t builds() const { return builds_; }
  /// Builds that had to grow a buffer (steady state: 0 growth per build).
  std::size_t reallocations() const { return reallocs_; }
  /// True when the last build used the dense bucket table (vs the sparse
  /// extreme-coordinate fallback).
  bool dense() const { return dense_; }

  /// Logical footprint of the bucket/scratch buffers in bytes (element
  /// counts, not capacities) — the memory-accounting probe.
  double footprint_bytes() const {
    return static_cast<double>(
        (starts_.size() + cursor_.size() + ids_.size()) *
            sizeof(std::uint32_t) +
        packed_.size() * sizeof(double) +
        (bin_x_.size() + bin_y_.size()) * sizeof(long long) +
        entries_.size() * sizeof(SparseEntry));
  }

 private:
  long long bin_coord(double v) const {
    return static_cast<long long>(std::floor(v / bucket_));
  }

  struct SparseEntry {
    long long bx = 0;
    long long by = 0;
    std::uint32_t id = 0;
  };

  double bucket_ = 1.0;
  double reach_ = 0.0;
  bool dense_ = true;
  // Bin bounding box of the last build (dense table spans it exactly).
  long long min_x_ = 0, max_x_ = -1, min_y_ = 0, max_y_ = -1;
  // Dense bucket row length (y extent): the table is x-major so a probe
  // column of consecutive by bins is contiguous in the CSR arrays.
  std::size_t ny_ = 0;
  // Dense: CSR-style bucket table. starts_ has buckets+1 prefix offsets
  // into ids_, which lists cell indices bucket by bucket, ascending.
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> ids_;
  // Packed per-candidate payload {x, y, aux_a, aux_b} in ids_ order (dense)
  // or entries_ order (sparse); zeros for aux when build got no arrays.
  std::vector<double> packed_;
  // Per-cell bin coordinates (phase-1 scratch, parallel-filled).
  std::vector<long long> bin_x_;
  std::vector<long long> bin_y_;
  // Sparse fallback: bucket list sorted by (bx, by, id).
  std::vector<SparseEntry> entries_;
  std::size_t builds_ = 0;
  std::size_t reallocs_ = 0;
};

}  // namespace autoncs::place
