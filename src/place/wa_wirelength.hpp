// Weighted-average (WA) smooth wirelength model — Eq. (1) of the paper,
// adopted from Hsu et al. [13] to approximate the nonconvex HPWL, with
// per-wire weights w_i that bias the optimizer toward shortening
// RC-critical wires.
//
// For one wire e with pin coordinates {x_v}:
//   WA_x(e) = sum x e^{x/g} / sum e^{x/g} - sum x e^{-x/g} / sum e^{-x/g}
// (g = gamma, the user-defined smoothness), likewise for y, and
//   WL(x, y) = sum_e w_e (WA_x(e) + WA_y(e)).
// Exponentials are max-shifted for numerical stability.
//
// With a thread pool, per-wire terms are computed in parallel (each wire
// writes only its own slot of a scratch buffer) and then reduced into the
// total and the gradient sequentially in wire order — the exact FP
// operation order of the single-thread loop, so the result is
// bit-identical for any thread count.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

/// Interleaved coordinate state [x0, y0, x1, y1, ...] of netlist cells.
std::vector<double> pack_positions(const netlist::Netlist& netlist);
void unpack_positions(const std::vector<double>& state, netlist::Netlist& netlist);

struct WaModel {
  /// Smoothness gamma of Eq. (1), in the same unit as the coordinates.
  double gamma = 1.0;

  WaModel() = default;
  explicit WaModel(double gamma_in) : gamma(gamma_in) {}

  /// WL(x, y); if `gradient` is nonnull it must have state.size() entries
  /// and receives d WL / d state (accumulated, caller zeroes it). `pool`
  /// parallelizes the per-wire terms; the scratch buffers make this
  /// method non-reentrant, but the result is identical with or without a
  /// pool.
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient,
                  util::ThreadPool* pool = nullptr) const;

 private:
  // Reused across evaluate() calls (the placer evaluates in a tight CG
  // loop): per-wire values and per-pin gradient terms, flattened through
  // `offsets` by pin count.
  mutable std::vector<double> wire_value_;
  mutable std::vector<std::size_t> offsets_;
  mutable std::vector<double> contrib_x_;
  mutable std::vector<double> contrib_y_;
};

/// Exact weighted HPWL: sum_e w_e (max x - min x + max y - min y) — the
/// nonsmooth quantity the WA model approximates.
double weighted_hpwl(const netlist::Netlist& netlist,
                     const std::vector<double>& state);

/// Unweighted HPWL (every wire counted once).
double hpwl(const netlist::Netlist& netlist, const std::vector<double>& state);

}  // namespace autoncs::place
