// Weighted-average (WA) smooth wirelength model — Eq. (1) of the paper,
// adopted from Hsu et al. [13] to approximate the nonconvex HPWL, with
// per-wire weights w_i that bias the optimizer toward shortening
// RC-critical wires.
//
// For one wire e with pin coordinates {x_v}:
//   WA_x(e) = sum x e^{x/g} / sum e^{x/g} - sum x e^{-x/g} / sum e^{-x/g}
// (g = gamma, the user-defined smoothness), likewise for y, and
//   WL(x, y) = sum_e w_e (WA_x(e) + WA_y(e)).
// Exponentials are max-shifted for numerical stability.
//
// With a thread pool, per-wire terms are computed in parallel (each wire
// writes only its own slot of a scratch buffer) and then reduced: the
// total is folded sequentially in wire order, and the gradient is
// GATHERED in parallel per cell through a static cell -> (wire, pin-slot)
// inverse index — each gradient entry receives exactly the additions of
// the single-thread scatter loop, in the same (wire, pin) ascending
// order, so every result is bit-identical for any thread count. The
// acceptance cache (value-only trials replayed as gradients) works on the
// pooled path too.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

/// Interleaved coordinate state [x0, y0, x1, y1, ...] of netlist cells.
std::vector<double> pack_positions(const netlist::Netlist& netlist);
void unpack_positions(const std::vector<double>& state, netlist::Netlist& netlist);

/// One-dimensional WA term for a wire along one axis — the per-wire kernel
/// of WaModel::evaluate, exposed for bench_micro_kernels. When `contrib` is
/// nonnull it must have pins.size() slots and receives the k-th pin's
/// gradient term scaled by `weight`; the per-pin max-shifted exponentials
/// a/b are computed once on the value pass and reused by the gradient pass
/// (cached in thread-local scratch), with FP operations identical to the
/// value-only mode. `contrib == nullptr` is the cheap value-only form.
double wa_axis_terms(const std::vector<std::size_t>& pins,
                     const std::vector<double>& state, std::size_t axis,
                     double gamma, double weight, double* contrib);

struct WaModel {
  /// Smoothness gamma of Eq. (1), in the same unit as the coordinates.
  double gamma = 1.0;
  /// When false, the sequential path runs the pre-optimization per-wire
  /// kernel — exponentials recomputed from scratch in the gradient loop,
  /// no exp(0) shortcut — kept as the reference engine for the determinism
  /// regression test and the bench_perf_placer baseline. Values and
  /// gradients are bit-identical either way (the cached kernel stores and
  /// reuses the same doubles the legacy kernel recomputes).
  bool cached_kernels = true;

  WaModel() = default;
  explicit WaModel(double gamma_in) : gamma(gamma_in) {}

  /// WL(x, y); if `gradient` is nonnull it must have state.size() entries
  /// and receives d WL / d state (accumulated, caller zeroes it). `pool`
  /// parallelizes the per-wire terms; the scratch buffers make this
  /// method non-reentrant, but the result is identical with or without a
  /// pool.
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient,
                  util::ThreadPool* pool = nullptr) const;

  /// Logical footprint of the scratch/acceptance-cache buffers in bytes
  /// (element counts, not capacities). NOT thread-count invariant: the
  /// pin inverse index is built only for pooled gather paths, so this
  /// may only be recorded into the manifest, never into metrics.
  double footprint_bytes() const {
    return static_cast<double>(
        (wire_value_.size() + contrib_x_.size() + contrib_y_.size() +
         cache_fp_.size() + cache_ax_.size() + cache_bx_.size() +
         cache_ay_.size() + cache_by_.size() + cache_state_.size()) *
            sizeof(double) +
        (offsets_.size() + cell_off_.size()) * sizeof(std::size_t) +
        (cell_wire_.size() + cell_slot_.size()) * sizeof(std::uint32_t));
  }

 private:
  // Reused across evaluate() calls (the placer evaluates in a tight CG
  // loop): per-wire values and per-pin gradient terms, flattened through
  // `offsets` by pin count.
  mutable std::vector<double> wire_value_;
  mutable std::vector<std::size_t> offsets_;
  mutable std::vector<double> contrib_x_;
  mutable std::vector<double> contrib_y_;
  // Acceptance cache (sequential cached-kernel path): each value-only
  // evaluation records per wire-axis the smooth max/min and exponential
  // sums {f_plus, f_minus, sum_a, sum_b} plus every pin's max-shifted
  // exponentials. A gradient call at the same state byte for byte replays
  // only the gradient loop over the cached doubles — identical FP
  // operations, no min/max scan, no libm.
  mutable std::vector<double> cache_fp_;  // stride 4 per wire-axis
  mutable std::vector<double> cache_ax_;  // per-pin exps, offsets_ layout
  mutable std::vector<double> cache_bx_;
  mutable std::vector<double> cache_ay_;
  mutable std::vector<double> cache_by_;
  mutable std::vector<double> cache_state_;
  mutable double cache_gamma_ = 0.0;
  /// Total of the cached value pass; a replay returns it directly (the
  /// per-wire recomputation from cache_fp_ reproduces it bit for bit, so
  /// storing it skips the fold).
  mutable double cache_value_ = 0.0;
  mutable bool cache_valid_ = false;
  /// Static cell -> incident (wire, pin-slot) CSR inverse of the wire pin
  /// lists, entries sorted (wire, pin) ascending per cell — the order the
  /// sequential scatter loop touches each gradient entry. Built lazily for
  /// the pooled gather paths and rebuilt when the topology extents change.
  void build_pin_index(const netlist::Netlist& netlist) const;
  mutable std::vector<std::size_t> cell_off_;
  mutable std::vector<std::uint32_t> cell_wire_;
  mutable std::vector<std::uint32_t> cell_slot_;
  mutable std::size_t pin_index_cells_ = 0;
  mutable std::size_t pin_index_wires_ = 0;
  mutable std::size_t pin_index_entries_ = 0;
};

/// Exact weighted HPWL: sum_e w_e (max x - min x + max y - min y) — the
/// nonsmooth quantity the WA model approximates.
double weighted_hpwl(const netlist::Netlist& netlist,
                     const std::vector<double>& state);

/// Unweighted HPWL (every wire counted once).
double hpwl(const netlist::Netlist& netlist, const std::vector<double>& state);

}  // namespace autoncs::place
