// Weighted-average (WA) smooth wirelength model — Eq. (1) of the paper,
// adopted from Hsu et al. [13] to approximate the nonconvex HPWL, with
// per-wire weights w_i that bias the optimizer toward shortening
// RC-critical wires.
//
// For one wire e with pin coordinates {x_v}:
//   WA_x(e) = sum x e^{x/g} / sum e^{x/g} - sum x e^{-x/g} / sum e^{-x/g}
// (g = gamma, the user-defined smoothness), likewise for y, and
//   WL(x, y) = sum_e w_e (WA_x(e) + WA_y(e)).
// Exponentials are max-shifted for numerical stability.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace autoncs::place {

/// Interleaved coordinate state [x0, y0, x1, y1, ...] of netlist cells.
std::vector<double> pack_positions(const netlist::Netlist& netlist);
void unpack_positions(const std::vector<double>& state, netlist::Netlist& netlist);

struct WaModel {
  /// Smoothness gamma of Eq. (1), in the same unit as the coordinates.
  double gamma = 1.0;

  /// WL(x, y); if `gradient` is nonnull it must have state.size() entries
  /// and receives d WL / d state (accumulated, caller zeroes it).
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient) const;
};

/// Exact weighted HPWL: sum_e w_e (max x - min x + max y - min y) — the
/// nonsmooth quantity the WA model approximates.
double weighted_hpwl(const netlist::Netlist& netlist,
                     const std::vector<double>& state);

/// Unweighted HPWL (every wire counted once).
double hpwl(const netlist::Netlist& netlist, const std::vector<double>& state);

}  // namespace autoncs::place
