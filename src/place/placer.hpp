// Analytical placement driver — Algorithm 4 of the paper.
//
//   min WL(x, y) + lambda * D(x, y)
//
// Line 1 initializes cells on a regular grid and sets
// lambda_0 = sum|dWL| / sum|dD|; lines 3-6 repeatedly solve the penalty
// function with conjugate gradient and double lambda until the remaining
// overlap is below the user threshold; line 7 legalizes the residue.
#pragma once

#include <cstdint>

#include "place/conjugate_gradient.hpp"
#include "place/density.hpp"
#include "place/legalizer.hpp"
#include "place/wa_wirelength.hpp"

namespace autoncs::place {

struct PlacerOptions {
  /// WA smoothness gamma (um).
  double gamma = 2.0;
  /// Routing-space factor for virtual widths.
  double omega = 1.2;
  /// Softplus sharpness of the density model (1/um).
  double beta = 16.0;
  /// Fraction of the square die the virtual cell area should fill; the die
  /// side is sqrt(total virtual area / target_density). Cells straying
  /// outside pay a quadratic penalty scaled by the same lambda as the
  /// density term, so the outline tightens together with overlap removal.
  double target_density = 0.8;
  /// Outer loop stops when overlap_ratio() <= this (Alg. 4 line 6).
  double overlap_stop_ratio = 0.03;
  std::size_t max_outer_iterations = 24;
  /// lambda multiplier per outer iteration (Alg. 4 line 5).
  double lambda_growth = 2.0;
  CgOptions cg{.max_iterations = 100, .gradient_tolerance = 1e-6};
  LegalizerOptions legalizer{};
  /// Deterministic jitter seed for the initial grid (breaks exact ties).
  std::uint64_t seed = 1;
  /// Worker threads for the WA-wirelength and density gradient evaluation;
  /// 0 = hardware concurrency. The placement is bit-identical for any
  /// value (per-item parallel phase, sequential fixed-order reduction).
  std::size_t threads = 0;
  /// Run the pre-optimization evaluation engine: gradient on every
  /// line-search trial and the per-evaluation unordered_map spatial hash
  /// instead of the reusable flat grid. Produces bit-identical placements
  /// (the determinism test asserts it) — kept as the honest baseline for
  /// bench_perf_placer and for bisecting evaluation-engine regressions.
  bool legacy_evaluation = false;
  /// Wall-clock budget for the outer penalty loop in milliseconds; 0 =
  /// unlimited (the default — clean runs never consult the clock). When
  /// the budget runs out the placer stops after the current outer
  /// iteration, legalizes the best-so-far state and reports
  /// budget_exhausted (a degraded but valid placement).
  double wall_budget_ms = 0.0;
  /// Optional recovery-event sink (CG numerical guards, budget exhaustion,
  /// non-finite state reverts). Null runs the identical guards silently.
  util::RecoveryLog* recovery = nullptr;
};

struct BoundingBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double area() const { return width() * height(); }
};

/// Convergence record of one outer penalty iteration (Alg. 4 lines 3-6):
/// the lambda trajectory, the CG effort it took, and how far overlap and
/// wirelength had come when it finished.
struct PlacerOuterStats {
  double lambda = 0.0;
  /// Penalty-function value CG converged to (WL + lambda * D).
  double objective = 0.0;
  double overlap_ratio = 0.0;
  /// Exact unweighted HPWL at this iteration's solution (um).
  double hpwl_um = 0.0;
  std::size_t cg_iterations = 0;
  bool cg_converged = false;
  /// Objective calls this CG run made (every call computes the value).
  std::size_t cg_value_evals = 0;
  /// Objective calls that also computed the gradient (<= cg_value_evals;
  /// with value-only trials, one per accepted step plus the initial point).
  std::size_t cg_gradient_evals = 0;
  /// Density spatial-structure rebuilds during this outer iteration.
  std::size_t density_grid_builds = 0;
};

struct PlacementReport {
  std::size_t outer_iterations = 0;
  double lambda_final = 0.0;
  double overlap_ratio_before_legalization = 0.0;
  /// Per-outer-iteration convergence trajectory, in iteration order.
  std::vector<PlacerOuterStats> outer;
  LegalizerReport legalization;
  /// Exact HPWL of the final placement (um), unweighted.
  double hpwl_um = 0.0;
  /// Chip area: bounding box of the virtual cell extents (um^2) — routing
  /// space is part of the die.
  double area_um2 = 0.0;
  BoundingBox die;
  /// Evaluation-engine effort totals across all outer iterations (the
  /// lambda_0 bootstrap evaluations are not CG calls and are excluded).
  std::size_t cg_value_evals_total = 0;
  std::size_t cg_gradient_evals_total = 0;
  std::size_t density_grid_builds_total = 0;
  /// Flat-grid rebuilds that had to grow a buffer (0 in steady state).
  std::size_t density_grid_reallocations = 0;
  /// True when PlacerOptions::wall_budget_ms stopped the outer loop early.
  bool budget_exhausted = false;
  /// True when any recovery rung that alters the result fired (budget
  /// exhaustion, CG restart exhaustion, non-finite state revert). The
  /// placement is still valid and legalized — just not the clean-path one.
  bool degraded = false;
};

/// Places `netlist` in-place (cell x/y updated) and reports the outcome.
PlacementReport place(netlist::Netlist& netlist, const PlacerOptions& options = {});

/// Quadratic out-of-die penalty, sharing lambda with the density term.
/// Returns the penalty; accumulates into `gradient` when nonnull (nullptr
/// is the value-only mode — same value, no gradient work).
double boundary_penalty(const netlist::Netlist& netlist,
                        const std::vector<double>& state, double omega,
                        double die_half, std::vector<double>* gradient);

/// Bounding box of the placed cells' virtual extents.
BoundingBox placement_bounding_box(const netlist::Netlist& netlist, double omega);

}  // namespace autoncs::place
