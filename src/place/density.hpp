// Cell density model — Eq. (2) of the paper, following the sigmoid-based
// overlap of Chou et al. [14]:
//   D(x, y) = sum_{ci, cj} Ox(ci, cj) * Oy(ci, cj)
// where Ox is a smooth one-dimensional overlap between the VIRTUAL extents
// of two cells. The virtual width is omega * width (Sec. 3.5), reserving
// routing space around every cell.
//
// Our smooth overlap is the softplus of the rectilinear penetration depth:
//   Ox = softplus_beta(tx - |xi - xj|),  tx = (wi' + wj') / 2,
// which matches the exact overlap (tx - |d|)+ as beta grows and has the
// sigmoid as its derivative. Pairs are enumerated through a uniform spatial
// hash so the cost stays near-linear in the cell count.
//
// With a thread pool, the pair terms are computed in parallel (cell i owns
// the pairs (i, j), j > i, and writes only its own scratch list) and then
// reduced into the total and the gradient sequentially in (i, hash
// candidate) order — the exact FP operation order of the single-thread
// loop, so the result is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

struct DensityModel {
  /// Routing-space factor omega applied to both cell dimensions.
  double omega = 1.2;
  /// Softplus sharpness (1/um). Larger = closer to the exact hinge.
  double beta = 16.0;

  DensityModel() = default;
  DensityModel(double omega_in, double beta_in) : omega(omega_in), beta(beta_in) {}

  /// D(x, y); accumulates into `gradient` when nonnull (caller zeroes it).
  /// `pool` parallelizes the pair enumeration; the scratch buffers make
  /// this method non-reentrant, but the result is identical with or
  /// without a pool.
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient,
                  util::ThreadPool* pool = nullptr) const;

 private:
  /// One interacting pair (i, j) found in phase 1: the smooth overlap area
  /// and the gradient terms applied to i (and negated on j) in phase 2.
  struct PairTerm {
    std::size_t j = 0;
    double area = 0.0;
    double sx = 0.0;
    double sy = 0.0;
  };
  /// Per-cell pair lists, reused across evaluate() calls.
  mutable std::vector<std::vector<PairTerm>> pairs_;
};

/// Exact total pairwise rectangle overlap AREA of the virtual cells; the
/// convergence criterion of Alg. 4 line 6 ("sum of overlap").
double exact_overlap_area(const netlist::Netlist& netlist,
                          const std::vector<double>& state, double omega);

/// Overlap area normalized by total virtual cell area (a scale-free
/// stopping threshold).
double overlap_ratio(const netlist::Netlist& netlist,
                     const std::vector<double>& state, double omega);

}  // namespace autoncs::place
