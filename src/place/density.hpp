// Cell density model — Eq. (2) of the paper, following the sigmoid-based
// overlap of Chou et al. [14]:
//   D(x, y) = sum_{ci, cj} Ox(ci, cj) * Oy(ci, cj)
// where Ox is a smooth one-dimensional overlap between the VIRTUAL extents
// of two cells. The virtual width is omega * width (Sec. 3.5), reserving
// routing space around every cell.
//
// Our smooth overlap is the softplus of the rectilinear penetration depth:
//   Ox = softplus_beta(tx - |xi - xj|),  tx = (wi' + wj') / 2,
// which matches the exact overlap (tx - |d|)+ as beta grows and has the
// sigmoid as its derivative. Pairs are enumerated through a flat-array
// uniform grid (place/spatial_grid.hpp) owned by the model and rebinned —
// not reallocated — on every evaluation, so the cost stays near-linear in
// the cell count with no per-evaluation allocation.
//
// Evaluation modes: `gradient == nullptr` is the VALUE-ONLY hot path used
// by the line-search trials of the placer — it skips the sigmoid terms and
// every gradient scatter. The value is computed with the identical FP
// operations in both modes, so a value-only trial followed by a gradient
// evaluation at the accepted point reproduces the legacy
// gradient-everywhere trajectory bit for bit.
//
// With a thread pool, the pair terms are computed in parallel (cell i owns
// the pairs (i, j), j > i, and writes only its own scratch list) and then
// reduced into the total and the gradient sequentially in (i, grid
// candidate) order — the exact FP operation order of the single-thread
// loop, so the result is bit-identical for any thread count.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/spatial_grid.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

/// Softplus of the penetration depth — the smooth 1-D overlap. The +-30
/// clamp keeps exp in range; beyond it softplus is its own asymptote to
/// double precision.
inline double density_softplus(double z, double beta) {
  const double t = beta * z;
  if (t > 30.0) return z;
  if (t < -30.0) return 0.0;
  return std::log1p(std::exp(t)) / beta;
}

/// Sigmoid of the penetration depth — the softplus derivative, used only
/// on the gradient path.
inline double density_sigmoid(double z, double beta) {
  const double t = beta * z;
  if (t > 30.0) return 1.0;
  if (t < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-t));
}

/// One interacting pair's contribution: the smooth overlap area, the 1-D
/// overlaps it factors into, and the gradient terms applied to cell i
/// (negated on j).
struct DensityPairTerm {
  double area = 0.0;
  double ox = 0.0;
  double oy = 0.0;
  double sx = 0.0;
  double sy = 0.0;
};

/// Gradient terms of one surviving pair, given its geometry and the 1-D
/// overlaps from the value pass. Split out of density_pair_kernel so the
/// acceptance replay (gradient at a point whose value pass was cached)
/// performs the identical FP operations as a full gradient evaluation.
inline void density_pair_gradient(double dx, double dy, double tx, double ty,
                                  double ox, double oy, double beta,
                                  DensityPairTerm& out) {
  const double zx = tx - std::abs(dx);
  const double zy = ty - std::abs(dy);
  out.sx = (dx > 0.0 ? -1.0 : (dx < 0.0 ? 1.0 : 0.0)) *
           density_sigmoid(zx, beta) * oy;
  out.sy = (dy > 0.0 ? -1.0 : (dy < 0.0 ? 1.0 : 0.0)) *
           density_sigmoid(zy, beta) * ox;
}

/// Smooth-overlap pair kernel shared by the sequential and parallel
/// evaluation loops (and benched in isolation by bench_micro_kernels):
/// dx/dy are the center deltas xi - xj / yi - yj, tx/ty the virtual
/// half-extent sums. Returns false when the pair is outside the softplus
/// tail (contribution below exp(-30)); the gradient terms are computed
/// only when `with_gradient` is set.
inline bool density_pair_kernel(double dx, double dy, double tx, double ty,
                                double beta, double tail, bool with_gradient,
                                DensityPairTerm& out) {
  const double zx = tx - std::abs(dx);
  const double zy = ty - std::abs(dy);
  if (zx < -tail || zy < -tail) return false;
  const double ox = density_softplus(zx, beta);
  const double oy = density_softplus(zy, beta);
  out.area = ox * oy;
  out.ox = ox;
  out.oy = oy;
  if (with_gradient) {
    density_pair_gradient(dx, dy, tx, ty, ox, oy, beta, out);
  }
  return true;
}

struct DensityModel {
  /// Routing-space factor omega applied to both cell dimensions.
  double omega = 1.2;
  /// Softplus sharpness (1/um). Larger = closer to the exact hinge.
  double beta = 16.0;
  /// When false, pairs are enumerated through the legacy per-evaluation
  /// `unordered_map` spatial hash instead of the reusable flat grid — the
  /// pre-optimization engine kept for the determinism regression test and
  /// the bench_perf_placer baseline. Values and gradients are identical
  /// either way (same candidate order, same FP operations).
  bool use_flat_grid = true;

  DensityModel() = default;
  DensityModel(double omega_in, double beta_in) : omega(omega_in), beta(beta_in) {}

  /// D(x, y); accumulates into `gradient` when nonnull (caller zeroes it).
  /// `gradient == nullptr` is the cheap value-only mode (no sigmoids, no
  /// scatter). `pool` parallelizes the pair enumeration; the scratch
  /// buffers make this method non-reentrant, but the result is identical
  /// with or without a pool.
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient,
                  util::ThreadPool* pool = nullptr) const;

  /// Spatial-structure rebuilds performed so far (one per evaluation —
  /// positions change between objective calls, but the flat grid's buffers
  /// are reused so a rebuild allocates nothing in steady state).
  std::size_t grid_builds() const { return grid_builds_; }
  /// Rebuilds that had to grow a flat-grid buffer.
  std::size_t grid_reallocations() const { return grid_.reallocations(); }

  /// Logical footprint of the pair lists, acceptance cache and the flat
  /// grid's buckets in bytes (element counts, not capacities). Pair-list
  /// lengths track the final accepted state so the value is reproducible,
  /// but it is recorded manifest-only alongside the WA model's caches.
  double footprint_bytes() const {
    double pair_bytes = 0.0;
    for (const auto& list : pairs_)
      pair_bytes += static_cast<double>(list.size() * sizeof(PairTerm));
    return pair_bytes +
           static_cast<double>(
               (half_w_.size() + half_h_.size() + replay_sx_.size() +
                replay_sy_.size() + cache_state_.size()) *
                   sizeof(double) +
               cache_pairs_.size() * sizeof(CachedPair)) +
           grid_.footprint_bytes();
  }

 private:
  /// One interacting pair (i, j) found in phase 1: the smooth overlap area
  /// and the gradient terms applied to i (and negated on j) in phase 2,
  /// plus the pair geometry so a value-only pass can feed the acceptance
  /// cache.
  struct PairTerm {
    std::size_t j = 0;
    double area = 0.0;
    double ox = 0.0;
    double oy = 0.0;
    double sx = 0.0;
    double sy = 0.0;
  };
  /// One surviving pair recorded by a value-only flat-grid evaluation: the
  /// pair plus its 1-D softplus overlaps, enough to replay the gradient at
  /// the same point without re-enumerating candidates or recomputing
  /// softplus. Kept minimal — the cache is refilled on every trial, so its
  /// write traffic is on the hot path. The pair geometry (dx, dy, tx, ty)
  /// is recomputed at replay from the state and half-extent arrays, which
  /// hold the identical doubles the value pass packed into the grid.
  struct CachedPair {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    double ox = 0.0;
    double oy = 0.0;
  };
  template <typename Grid>
  double evaluate_with_grid(const Grid& grid, const netlist::Netlist& netlist,
                            const std::vector<double>& state,
                            std::vector<double>* gradient,
                            util::ThreadPool* pool, double tail,
                            bool fill_cache) const;

  /// Per-cell pair lists, reused across evaluate() calls.
  mutable std::vector<std::vector<PairTerm>> pairs_;
  /// Virtual half extents 0.5 * omega * {width, height} per cell, refreshed
  /// each evaluation (cache-friendly vs chasing the cell structs).
  mutable std::vector<double> half_w_;
  mutable std::vector<double> half_h_;
  /// Reusable flat grid (use_flat_grid == true).
  mutable UniformGrid grid_;
  mutable std::size_t grid_builds_ = 0;
  /// Acceptance cache: the Armijo line search evaluates the accepted trial
  /// value-only, then the placer asks for the gradient at the SAME point.
  /// Each flat-grid value-only evaluation records its surviving pairs and
  /// total here; a gradient call whose state matches byte for byte replays
  /// them (identical order, identical FP terms) and only pays the sigmoid
  /// work a full gradient evaluation would add on top of the value pass.
  mutable std::vector<CachedPair> cache_pairs_;
  /// Replay scratch: per cached pair the gradient terms (sx, sy), computed
  /// in parallel — each pair owns its slot — then scattered sequentially
  /// in the recorded pair order, so the replayed gradient stays
  /// bit-identical for any thread count.
  mutable std::vector<double> replay_sx_;
  mutable std::vector<double> replay_sy_;
  mutable std::vector<double> cache_state_;
  mutable double cache_total_ = 0.0;
  mutable double cache_beta_ = 0.0;
  mutable double cache_omega_ = 0.0;
  mutable bool cache_valid_ = false;
};

/// Exact total pairwise rectangle overlap AREA of the virtual cells; the
/// convergence criterion of Alg. 4 line 6 ("sum of overlap").
double exact_overlap_area(const netlist::Netlist& netlist,
                          const std::vector<double>& state, double omega);

/// Overlap area normalized by total virtual cell area (a scale-free
/// stopping threshold).
double overlap_ratio(const netlist::Netlist& netlist,
                     const std::vector<double>& state, double omega);

}  // namespace autoncs::place
