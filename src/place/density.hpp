// Cell density model — Eq. (2) of the paper, following the sigmoid-based
// overlap of Chou et al. [14]:
//   D(x, y) = sum_{ci, cj} Ox(ci, cj) * Oy(ci, cj)
// where Ox is a smooth one-dimensional overlap between the VIRTUAL extents
// of two cells. The virtual width is omega * width (Sec. 3.5), reserving
// routing space around every cell.
//
// Our smooth overlap is the softplus of the rectilinear penetration depth:
//   Ox = softplus_beta(tx - |xi - xj|),  tx = (wi' + wj') / 2,
// which matches the exact overlap (tx - |d|)+ as beta grows and has the
// sigmoid as its derivative. Pairs are enumerated through a uniform spatial
// hash so the cost stays near-linear in the cell count.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace autoncs::place {

struct DensityModel {
  /// Routing-space factor omega applied to both cell dimensions.
  double omega = 1.2;
  /// Softplus sharpness (1/um). Larger = closer to the exact hinge.
  double beta = 16.0;

  /// D(x, y); accumulates into `gradient` when nonnull (caller zeroes it).
  double evaluate(const netlist::Netlist& netlist,
                  const std::vector<double>& state,
                  std::vector<double>* gradient) const;
};

/// Exact total pairwise rectangle overlap AREA of the virtual cells; the
/// convergence criterion of Alg. 4 line 6 ("sum of overlap").
double exact_overlap_area(const netlist::Netlist& netlist,
                          const std::vector<double>& state, double omega);

/// Overlap area normalized by total virtual cell area (a scale-free
/// stopping threshold).
double overlap_ratio(const netlist::Netlist& netlist,
                     const std::vector<double>& state, double omega);

}  // namespace autoncs::place
