#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "place/density.hpp"
#include "place/spatial_grid.hpp"
#include "util/check.hpp"

namespace autoncs::place {

namespace {

/// Checks one ordered pair (i, j) against the CURRENT state and, when the
/// virtual rectangles overlap, separates them along the minimum-penetration
/// axis (the lighter cell moving further). Shared by the quadratic and the
/// grid-pruned sweeps so both perform the identical FP operations on every
/// overlapping pair. Returns false (and moves nothing) for a clear pair;
/// on a separation, *moved_i / *moved_j receive the absolute distances the
/// two cells were displaced.
inline bool separate_pair(const netlist::Netlist& netlist,
                          std::vector<double>& state,
                          const LegalizerOptions& options, std::size_t i,
                          std::size_t j, double hwi, double hhi, double ai,
                          double* moved_i, double* moved_j) {
  const double tx = hwi + 0.5 * options.omega * netlist.cells[j].width;
  const double ty = hhi + 0.5 * options.omega * netlist.cells[j].height;
  const double dx = state[2 * i] - state[2 * j];
  const double dy = state[2 * i + 1] - state[2 * j + 1];
  const double px = tx - std::abs(dx);
  const double py = ty - std::abs(dy);
  if (px <= 0.0 || py <= 0.0) return false;
  const double aj = netlist.cells[j].area();
  const double share_i = aj / (ai + aj);  // lighter cell moves more
  if (px <= py) {
    const double move = px + options.margin;
    const double dir = dx >= 0.0 ? 1.0 : -1.0;
    state[2 * i] += dir * move * share_i;
    state[2 * j] -= dir * move * (1.0 - share_i);
    *moved_i = move * share_i;
    *moved_j = move * (1.0 - share_i);
  } else {
    const double move = py + options.margin;
    const double dir = dy >= 0.0 ? 1.0 : -1.0;
    state[2 * i + 1] += dir * move * share_i;
    state[2 * j + 1] -= dir * move * (1.0 - share_i);
    *moved_i = move * share_i;
    *moved_j = move * (1.0 - share_i);
  }
  return true;
}

/// Quadratic reference sweep: every ordered pair, ascending (i, j).
bool quadratic_pass(const netlist::Netlist& netlist, std::vector<double>& state,
                    const LegalizerOptions& options) {
  const std::size_t n = netlist.cells.size();
  bool any_overlap = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double hwi = 0.5 * options.omega * netlist.cells[i].width;
    const double hhi = 0.5 * options.omega * netlist.cells[i].height;
    const double ai = netlist.cells[i].area();
    for (std::size_t j = i + 1; j < n; ++j) {
      double mi = 0.0;
      double mj = 0.0;
      if (separate_pair(netlist, state, options, i, j, hwi, hhi, ai, &mi, &mj))
        any_overlap = true;
    }
  }
  return any_overlap;
}

/// Grid-pruned sweep, bit-identical to quadratic_pass. Two cells can only
/// overlap when their centers are within t_max (the largest virtual pair
/// extent) on both axes, so a pair whose binned distance rules that out is
/// skipped — the reference sweep would have checked it and moved nothing.
/// Because cells drift WHILE the sweep runs, the grid is built with slack:
/// reach = t_max + 2 * slack covers the worst case of both the queried
/// cell and a candidate having drifted up to `slack` from their binned
/// positions, and the grid is rebinned from the current state the moment
/// any cell's accumulated drift exceeds the slack. Candidates are sorted
/// so pairs are still visited in ascending j against the same evolving
/// state as the reference sweep.
class PrunedSweep {
 public:
  PrunedSweep(const netlist::Netlist& netlist, const LegalizerOptions& options)
      : netlist_(netlist),
        options_(options),
        drift_(netlist.cells.size(), 0.0) {
    double max_w = 0.0;
    double max_h = 0.0;
    for (const auto& cell : netlist.cells) {
      max_w = std::max(max_w, cell.width);
      max_h = std::max(max_h, cell.height);
    }
    const double t_max = options.omega * std::max(max_w, max_h);
    // Small slack keeps the probe window tight; separations move cells by
    // fractions of a cell extent, so drift rarely exceeds it and the
    // rebuild fallback below stays cheap (one O(n) rebin).
    slack_ = std::max(0.25 * t_max, 1e-6);
    reach_ = t_max + 2.0 * slack_;
  }

  bool pass(std::vector<double>& state) {
    const std::size_t n = netlist_.cells.size();
    rebin(state);
    bool any_overlap = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double hwi = 0.5 * options_.omega * netlist_.cells[i].width;
      const double hhi = 0.5 * options_.omega * netlist_.cells[i].height;
      const double ai = netlist_.cells[i].area();
      bool stale = true;
      std::size_t next_after = i;  // only pairs with j > next_after remain
      std::size_t idx = 0;
      while (true) {
        if (stale) {
          cand_.clear();
          grid_.for_candidates(i, state[2 * i], state[2 * i + 1],
                               [&](std::size_t j) {
                                 cand_.push_back(static_cast<std::uint32_t>(j));
                               });
          std::sort(cand_.begin(), cand_.end());
          idx = 0;
          stale = false;
        }
        while (idx < cand_.size() && cand_[idx] <= next_after) ++idx;
        if (idx == cand_.size()) break;
        const std::size_t j = cand_[idx];
        next_after = j;
        double mi = 0.0;
        double mj = 0.0;
        if (separate_pair(netlist_, state, options_, i, j, hwi, hhi, ai, &mi,
                          &mj)) {
          any_overlap = true;
          drift_[i] += mi;
          drift_[j] += mj;
          drift_max_ = std::max(drift_max_, std::max(drift_[i], drift_[j]));
          if (drift_max_ > slack_) {
            // Candidate sets from the old bins are no longer a guaranteed
            // superset; rebin and re-collect for this cell (the processed
            // prefix is skipped via next_after).
            rebin(state);
            stale = true;
          }
        }
      }
    }
    return any_overlap;
  }

 private:
  void rebin(const std::vector<double>& state) {
    // Bucket == reach: a 3x3 probe window covers the reach, and the sweep
    // sorts its candidates anyway, so the coarser binning costs nothing in
    // ordering (unlike the density grid, whose bucket fixes the candidate
    // iteration order).
    grid_.build(netlist_, state, reach_, std::max(reach_, 1e-6));
    std::fill(drift_.begin(), drift_.end(), 0.0);
    drift_max_ = 0.0;
  }

  const netlist::Netlist& netlist_;
  const LegalizerOptions& options_;
  UniformGrid grid_;
  std::vector<double> drift_;  // per-cell |displacement| since last rebin
  double drift_max_ = 0.0;
  double slack_ = 0.0;
  double reach_ = 0.0;
  std::vector<std::uint32_t> cand_;
};

}  // namespace

LegalizerReport legalize(const netlist::Netlist& netlist,
                         std::vector<double>& state,
                         const LegalizerOptions& options) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  const std::size_t n = netlist.cells.size();
  LegalizerReport report;
  PrunedSweep pruned(netlist, options);

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    report.passes = pass + 1;
    const bool any_overlap = options.use_flat_grid
                                 ? pruned.pass(state)
                                 : quadratic_pass(netlist, state, options);
    if (options.die_half > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double lx = std::max(
            0.0,
            options.die_half - 0.5 * options.omega * netlist.cells[i].width);
        const double ly = std::max(
            0.0,
            options.die_half - 0.5 * options.omega * netlist.cells[i].height);
        state[2 * i] = std::clamp(state[2 * i], -lx, lx);
        state[2 * i + 1] = std::clamp(state[2 * i + 1], -ly, ly);
      }
    }
    if (!any_overlap) {
      report.converged = true;
      break;
    }
    if (pass % 8 == 7) {
      // Periodic exact check so we can stop early on "good enough".
      const double ratio = overlap_ratio(netlist, state, options.omega);
      if (ratio < options.overlap_tolerance) {
        report.converged = true;
        break;
      }
    }
  }
  report.final_overlap_ratio = overlap_ratio(netlist, state, options.omega);
  if (report.final_overlap_ratio < options.overlap_tolerance)
    report.converged = true;
  return report;
}

}  // namespace autoncs::place
