#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>

#include "place/density.hpp"
#include "util/check.hpp"

namespace autoncs::place {

LegalizerReport legalize(const netlist::Netlist& netlist,
                         std::vector<double>& state,
                         const LegalizerOptions& options) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  const std::size_t n = netlist.cells.size();
  LegalizerReport report;

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    report.passes = pass + 1;
    bool any_overlap = false;
    // Deterministic sweep over ordered pairs; for the few hundred to few
    // thousand cells of an NCS netlist the quadratic sweep is cheap
    // relative to the analytic phase and has no tuning knobs.
    for (std::size_t i = 0; i < n; ++i) {
      const double hwi = 0.5 * options.omega * netlist.cells[i].width;
      const double hhi = 0.5 * options.omega * netlist.cells[i].height;
      const double ai = netlist.cells[i].area();
      for (std::size_t j = i + 1; j < n; ++j) {
        const double tx = hwi + 0.5 * options.omega * netlist.cells[j].width;
        const double ty = hhi + 0.5 * options.omega * netlist.cells[j].height;
        const double dx = state[2 * i] - state[2 * j];
        const double dy = state[2 * i + 1] - state[2 * j + 1];
        const double px = tx - std::abs(dx);
        const double py = ty - std::abs(dy);
        if (px <= 0.0 || py <= 0.0) continue;
        any_overlap = true;
        const double aj = netlist.cells[j].area();
        const double share_i = aj / (ai + aj);  // lighter cell moves more
        if (px <= py) {
          const double move = px + options.margin;
          const double dir = dx >= 0.0 ? 1.0 : -1.0;
          state[2 * i] += dir * move * share_i;
          state[2 * j] -= dir * move * (1.0 - share_i);
        } else {
          const double move = py + options.margin;
          const double dir = dy >= 0.0 ? 1.0 : -1.0;
          state[2 * i + 1] += dir * move * share_i;
          state[2 * j + 1] -= dir * move * (1.0 - share_i);
        }
      }
    }
    if (options.die_half > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double lx = std::max(
            0.0, options.die_half - 0.5 * options.omega * netlist.cells[i].width);
        const double ly = std::max(
            0.0,
            options.die_half - 0.5 * options.omega * netlist.cells[i].height);
        state[2 * i] = std::clamp(state[2 * i], -lx, lx);
        state[2 * i + 1] = std::clamp(state[2 * i + 1], -ly, ly);
      }
    }
    if (!any_overlap) {
      report.converged = true;
      break;
    }
    if (pass % 8 == 7) {
      // Periodic exact check so we can stop early on "good enough".
      const double ratio = overlap_ratio(netlist, state, options.omega);
      if (ratio < options.overlap_tolerance) {
        report.converged = true;
        break;
      }
    }
  }
  report.final_overlap_ratio = overlap_ratio(netlist, state, options.omega);
  if (report.final_overlap_ratio < options.overlap_tolerance)
    report.converged = true;
  return report;
}

}  // namespace autoncs::place
