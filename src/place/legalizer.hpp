// Overlap legalization — Alg. 4 line 7 ("pushes away the cells to legalize
// the remaining overlap between cells").
//
// After the penalty loop the residual overlap is small, so a deterministic
// pairwise push-apart relaxation suffices: every overlapping pair of
// virtual rectangles is separated along its minimum-penetration axis, the
// lighter (smaller-area) cell moving further, until the residual overlap
// ratio drops below the tolerance or the pass budget is exhausted.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace autoncs::place {

struct LegalizerOptions {
  /// Virtual-width factor (must match the placer's omega).
  double omega = 1.2;
  /// Extra clearance added when separating a pair (um).
  double margin = 0.01;
  std::size_t max_passes = 400;
  /// Stop when overlap_ratio() falls below this.
  double overlap_tolerance = 1e-4;
  /// Half-side of the square die centered at the origin; cells are clamped
  /// inside after every pass. 0 disables clamping.
  double die_half = 0.0;
  /// When true, each pass prunes the pair sweep through a flat uniform grid
  /// (place/spatial_grid.hpp): only pairs close enough to possibly overlap
  /// are checked, in the same ascending order and against the same evolving
  /// state as the quadratic reference sweep, so the resulting placement is
  /// BIT-identical — skipped pairs are exactly those that could not have
  /// moved anything. False restores the all-pairs legacy sweep.
  bool use_flat_grid = true;
};

struct LegalizerReport {
  std::size_t passes = 0;
  double final_overlap_ratio = 0.0;
  bool converged = false;
};

/// Separates overlapping cells in `state` (interleaved coordinates).
LegalizerReport legalize(const netlist::Netlist& netlist,
                         std::vector<double>& state,
                         const LegalizerOptions& options = {});

}  // namespace autoncs::place
