// Nonlinear conjugate gradient (Polak-Ribiere+ with Armijo backtracking),
// the solver the paper uses for the penalty function at each outer
// placement iteration (Alg. 4 line 3, citing NTUplace3 [15]).
//
// The objective takes the gradient by POINTER: `gradient == nullptr` asks
// for the value only. With `CgOptions::value_only_trials` (the default),
// Armijo backtracking trials are evaluated value-only and the gradient is
// computed once, at the accepted point — rejected trials are discarded, so
// as long as the objective's value is computed with identical FP operations
// in both modes, the iterate sequence is bit-identical to the legacy
// gradient-everywhere search.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace autoncs::place {

struct CgOptions {
  std::size_t max_iterations = 200;
  /// Stop when the infinity norm of the gradient falls below this.
  double gradient_tolerance = 1e-7;
  /// Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  /// Step shrink factor for backtracking.
  double backtrack = 0.5;
  /// Maximum backtracking trials per line search.
  std::size_t max_backtracks = 30;
  /// First trial step of the first line search.
  double initial_step = 1.0;
  /// Evaluate line-search trials value-only and compute the gradient once
  /// on acceptance. False restores the legacy gradient-on-every-trial
  /// engine (same iterates, more work) — used as the bench baseline.
  bool value_only_trials = true;
};

struct CgResult {
  double value = 0.0;
  std::size_t iterations = 0;
  double gradient_infinity_norm = 0.0;
  /// True when the gradient tolerance was met (vs. iteration cap).
  bool converged = false;
  /// Objective calls, total — every call computes the value, so this
  /// counts both modes and `gradient_evaluations <= value_evaluations`
  /// holds structurally.
  std::size_t value_evaluations = 0;
  /// Objective calls that also computed the gradient.
  std::size_t gradient_evaluations = 0;
};

/// Objective callback: returns f(x); when `gradient` is nonnull (resized
/// by the caller to x.size()) it receives df/dx. A nullptr gradient is the
/// value-only hot path and must return the same value bit for bit.
using Objective = std::function<double(const std::vector<double>& x,
                                       std::vector<double>* gradient)>;

/// Minimizes `objective` starting from (and updating) `x`.
CgResult minimize_cg(std::vector<double>& x, const Objective& objective,
                     const CgOptions& options = {});

}  // namespace autoncs::place
