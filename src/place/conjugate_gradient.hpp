// Nonlinear conjugate gradient (Polak-Ribiere+ with Armijo backtracking),
// the solver the paper uses for the penalty function at each outer
// placement iteration (Alg. 4 line 3, citing NTUplace3 [15]).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace autoncs::place {

struct CgOptions {
  std::size_t max_iterations = 200;
  /// Stop when the infinity norm of the gradient falls below this.
  double gradient_tolerance = 1e-7;
  /// Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  /// Step shrink factor for backtracking.
  double backtrack = 0.5;
  /// Maximum backtracking trials per line search.
  std::size_t max_backtracks = 30;
  /// First trial step of the first line search.
  double initial_step = 1.0;
};

struct CgResult {
  double value = 0.0;
  std::size_t iterations = 0;
  double gradient_infinity_norm = 0.0;
  /// True when the gradient tolerance was met (vs. iteration cap).
  bool converged = false;
};

/// Objective callback: returns f(x) and fills `gradient` (resized by the
/// caller to x.size()).
using Objective =
    std::function<double(const std::vector<double>& x, std::vector<double>& gradient)>;

/// Minimizes `objective` starting from (and updating) `x`.
CgResult minimize_cg(std::vector<double>& x, const Objective& objective,
                     const CgOptions& options = {});

}  // namespace autoncs::place
