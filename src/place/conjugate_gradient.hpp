// Nonlinear conjugate gradient (Polak-Ribiere+ with Armijo backtracking),
// the solver the paper uses for the penalty function at each outer
// placement iteration (Alg. 4 line 3, citing NTUplace3 [15]).
//
// The objective takes the gradient by POINTER: `gradient == nullptr` asks
// for the value only. With `CgOptions::value_only_trials` (the default),
// Armijo backtracking trials are evaluated value-only and the gradient is
// computed once, at the accepted point — rejected trials are discarded, so
// as long as the objective's value is computed with identical FP operations
// in both modes, the iterate sequence is bit-identical to the legacy
// gradient-everywhere search.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace autoncs::place {

struct CgOptions {
  std::size_t max_iterations = 200;
  /// Stop when the infinity norm of the gradient falls below this.
  double gradient_tolerance = 1e-7;
  /// Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  /// Step shrink factor for backtracking.
  double backtrack = 0.5;
  /// Maximum backtracking trials per line search.
  std::size_t max_backtracks = 30;
  /// First trial step of the first line search.
  double initial_step = 1.0;
  /// Evaluate line-search trials value-only and compute the gradient once
  /// on acceptance. False restores the legacy gradient-on-every-trial
  /// engine (same iterates, more work) — used as the bench baseline.
  bool value_only_trials = true;
  /// Damped steepest-descent restarts from the last finite iterate allowed
  /// when the gradient goes non-finite, before the solver gives up and
  /// returns best-so-far flagged degraded.
  std::size_t max_recovery_restarts = 3;
  /// Optional recovery-event sink for the numerical guards (transparent
  /// retries, damped restarts). Null runs the identical guards silently.
  util::RecoveryLog* recovery = nullptr;
  /// Optional pool for the ELEMENTWISE vector updates only (trial
  /// construction, direction updates) — each element is written once,
  /// independently, so the iterates are bit-identical for any thread
  /// count. The reductions (dot, infinity norm, Polak-Ribiere beta) stay
  /// sequential: splitting them would reassociate the FP sums.
  util::ThreadPool* pool = nullptr;
};

struct CgResult {
  double value = 0.0;
  std::size_t iterations = 0;
  double gradient_infinity_norm = 0.0;
  /// True when the gradient tolerance was met (vs. iteration cap).
  bool converged = false;
  /// Objective calls, total — every call computes the value, so this
  /// counts both modes and `gradient_evaluations <= value_evaluations`
  /// holds structurally.
  std::size_t value_evaluations = 0;
  /// Objective calls that also computed the gradient.
  std::size_t gradient_evaluations = 0;
  /// Damped steepest-descent restarts taken after a non-finite gradient
  /// survived its retry. Any restart alters the iterate sequence.
  std::size_t recovery_restarts = 0;
  /// True when the restart budget ran out and the solver returned its last
  /// finite iterate early.
  bool degraded = false;
};

/// Objective callback: returns f(x); when `gradient` is nonnull (resized
/// by the caller to x.size()) it receives df/dx. A nullptr gradient is the
/// value-only hot path and must return the same value bit for bit.
using Objective = std::function<double(const std::vector<double>& x,
                                       std::vector<double>* gradient)>;

/// Minimizes `objective` starting from (and updating) `x`.
///
/// Numerical guards: a non-finite objective value or gradient is retried
/// once at the same point (which repairs transient poisoning bit-identically
/// — the objective is deterministic, so a genuine NaN just comes back and
/// takes the next rung). Non-finite line-search trials are rejected like any
/// failed Armijo trial; a non-finite gradient at an accepted point triggers
/// a damped steepest-descent restart from the last finite iterate, up to
/// CgOptions::max_recovery_restarts before returning best-so-far with
/// `degraded` set. Throws util::NumericalError only when the STARTING point
/// is non-finite even after retry — there is no finite iterate to return.
CgResult minimize_cg(std::vector<double>& x, const Objective& objective,
                     const CgOptions& options = {});

}  // namespace autoncs::place
