#include "place/spatial_grid.hpp"

#include <limits>

#include "util/check.hpp"

namespace autoncs::place {

namespace {

/// Dense bucket tables are capped at a small multiple of the cell count so
/// grid memory stays O(n) no matter how the die is shaped; pathological
/// spreads (the extreme-coordinate regression) take the sparse path.
double dense_bucket_cap(std::size_t n) {
  return 8.0 * static_cast<double>(n) + 1024.0;
}

}  // namespace

void UniformGrid::build(const netlist::Netlist& netlist,
                        const std::vector<double>& state,
                        double interaction_reach, double bucket,
                        util::ThreadPool* pool, const double* aux_a,
                        const double* aux_b) {
  AUTONCS_CHECK(bucket > 0.0, "grid bucket must be positive");
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  const std::size_t n = netlist.cells.size();
  AUTONCS_CHECK(n < std::numeric_limits<std::uint32_t>::max(),
                "uniform grid supports < 2^32 cells");
  bucket_ = bucket;
  reach_ = interaction_reach;
  ++builds_;

  bool grew = false;
  if (bin_x_.capacity() < n) grew = true;
  bin_x_.resize(n);
  bin_y_.resize(n);
  const auto compute_bins = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      bin_x_[c] = bin_coord(state[2 * c]);
      bin_y_[c] = bin_coord(state[2 * c + 1]);
    }
  };
  if (pool != nullptr && pool->size() > 1 && n >= 2048) {
    pool->parallel_for(n, [&](std::size_t begin, std::size_t end,
                              std::size_t /*worker*/) {
      compute_bins(begin, end);
    });
  } else {
    compute_bins(0, n);
  }

  min_x_ = min_y_ = std::numeric_limits<long long>::max();
  max_x_ = max_y_ = std::numeric_limits<long long>::min();
  for (std::size_t c = 0; c < n; ++c) {
    min_x_ = std::min(min_x_, bin_x_[c]);
    max_x_ = std::max(max_x_, bin_x_[c]);
    min_y_ = std::min(min_y_, bin_y_[c]);
    max_y_ = std::max(max_y_, bin_y_[c]);
  }
  if (n == 0) {
    dense_ = true;
    ny_ = 0;
    starts_.assign(1, 0);
    ids_.clear();
    packed_.clear();
    entries_.clear();
    return;
  }

  if (packed_.capacity() < 4 * n) grew = true;
  packed_.resize(4 * n);
  const auto pack_slot = [&](std::size_t slot, std::size_t c) {
    double* p = &packed_[4 * slot];
    p[0] = state[2 * c];
    p[1] = state[2 * c + 1];
    p[2] = aux_a != nullptr ? aux_a[c] : 0.0;
    p[3] = aux_b != nullptr ? aux_b[c] : 0.0;
  };

  // Decide dense vs sparse on the bucket-table size (computed in doubles —
  // the span product can overflow 64 bits for extreme coordinates).
  const double width = static_cast<double>(max_x_ - min_x_) + 1.0;
  const double height = static_cast<double>(max_y_ - min_y_) + 1.0;
  dense_ = width * height <= dense_bucket_cap(n);

  if (!dense_) {
    if (entries_.capacity() < n) grew = true;
    entries_.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      entries_[c] = {bin_x_[c], bin_y_[c], static_cast<std::uint32_t>(c)};
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                if (a.bx != b.bx) return a.bx < b.bx;
                if (a.by != b.by) return a.by < b.by;
                return a.id < b.id;
              });
    for (std::size_t k = 0; k < n; ++k) pack_slot(k, entries_[k].id);
    if (grew) ++reallocs_;
    return;
  }

  ny_ = static_cast<std::size_t>(max_y_ - min_y_) + 1;
  const auto buckets =
      ny_ * (static_cast<std::size_t>(max_x_ - min_x_) + 1);
  if (starts_.capacity() < buckets + 1 || ids_.capacity() < n) grew = true;

  // Stable counting sort: histogram, exclusive prefix, then fill in
  // ascending cell index — each bucket lists its cells in the same order
  // the legacy hash inserted them. x-major layout: a probe's dy column is
  // one contiguous slot range (see for_candidates).
  starts_.assign(buckets + 1, 0);
  const auto bucket_of = [&](std::size_t c) {
    return static_cast<std::size_t>(bin_x_[c] - min_x_) * ny_ +
           static_cast<std::size_t>(bin_y_[c] - min_y_);
  };
  for (std::size_t c = 0; c < n; ++c) ++starts_[bucket_of(c) + 1];
  for (std::size_t b = 0; b < buckets; ++b) starts_[b + 1] += starts_[b];
  cursor_.assign(starts_.begin(), starts_.end() - 1);
  ids_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::uint32_t slot = cursor_[bucket_of(c)]++;
    ids_[slot] = static_cast<std::uint32_t>(c);
    pack_slot(slot, c);
  }
  if (grew) ++reallocs_;
}

}  // namespace autoncs::place
