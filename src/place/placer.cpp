#include "place/placer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace autoncs::place {

namespace {

/// Regular-grid initial placement (Alg. 4 line 1) within the die, with a
/// small deterministic jitter so symmetric configurations don't stall CG.
void initial_grid(netlist::Netlist& netlist, double die_side, std::uint64_t seed) {
  const std::size_t n = netlist.cells.size();
  if (n == 0) return;
  const auto cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double pitch = die_side / static_cast<double>(cols);
  util::Rng rng(seed);
  for (std::size_t c = 0; c < n; ++c) {
    const double gx = static_cast<double>(c % cols);
    const double gy = static_cast<double>(c / cols);
    netlist.cells[c].x =
        (gx + 0.5) * pitch - 0.5 * die_side + rng.uniform(-0.05, 0.05) * pitch;
    netlist.cells[c].y =
        (gy + 0.5) * pitch - 0.5 * die_side + rng.uniform(-0.05, 0.05) * pitch;
  }
}

double sum_abs(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

}  // namespace

double boundary_penalty(const netlist::Netlist& netlist,
                        const std::vector<double>& state, double omega,
                        double die_half, std::vector<double>* gradient) {
  double total = 0.0;
  for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
    const auto& cell = netlist.cells[c];
    const double limit_x =
        std::max(0.0, die_half - 0.5 * omega * cell.width);
    const double limit_y =
        std::max(0.0, die_half - 0.5 * omega * cell.height);
    for (int axis = 0; axis < 2; ++axis) {
      const double v = state[2 * c + static_cast<std::size_t>(axis)];
      const double limit = axis == 0 ? limit_x : limit_y;
      const double excess = std::abs(v) - limit;
      if (excess <= 0.0) continue;
      total += excess * excess;
      if (gradient != nullptr) {
        (*gradient)[2 * c + static_cast<std::size_t>(axis)] +=
            2.0 * excess * (v > 0.0 ? 1.0 : -1.0);
      }
    }
  }
  return total;
}

BoundingBox placement_bounding_box(const netlist::Netlist& netlist, double omega) {
  BoundingBox box;
  if (netlist.cells.empty()) return box;
  box.min_x = box.min_y = std::numeric_limits<double>::infinity();
  box.max_x = box.max_y = -std::numeric_limits<double>::infinity();
  for (const auto& cell : netlist.cells) {
    const double hw = 0.5 * omega * cell.width;
    const double hh = 0.5 * omega * cell.height;
    box.min_x = std::min(box.min_x, cell.x - hw);
    box.max_x = std::max(box.max_x, cell.x + hw);
    box.min_y = std::min(box.min_y, cell.y - hh);
    box.max_y = std::max(box.max_y, cell.y + hh);
  }
  return box;
}

PlacementReport place(netlist::Netlist& netlist, const PlacerOptions& options) {
  AUTONCS_TRACE_SCOPE("place");
  AUTONCS_CHECK(netlist.validate().empty(), "netlist failed validation");
  AUTONCS_CHECK(!netlist.cells.empty(), "cannot place an empty netlist");

  AUTONCS_CHECK(options.target_density > 0.0 && options.target_density <= 1.0,
                "target density must be in (0, 1]");
  double virtual_area = 0.0;
  for (const auto& cell : netlist.cells)
    virtual_area += options.omega * cell.width * options.omega * cell.height;
  const double die_side = std::sqrt(virtual_area / options.target_density);
  const double die_half = 0.5 * die_side;

  initial_grid(netlist, die_side, options.seed);
  std::vector<double> state = pack_positions(netlist);

  WaModel wl_model{options.gamma};
  wl_model.cached_kernels = !options.legacy_evaluation;
  DensityModel density_model{options.omega, options.beta};
  density_model.use_flat_grid = !options.legacy_evaluation;
  CgOptions cg_options = options.cg;
  if (options.legacy_evaluation) cg_options.value_only_trials = false;
  cg_options.recovery = options.recovery;
  util::ThreadPool pool(options.threads, "place");
  util::ThreadPool* pool_ptr = pool.size() > 1 ? &pool : nullptr;
  cg_options.pool = pool_ptr;
  // Elementwise helper for the objective's vector plumbing (zero-fill,
  // scaled fold): disjoint writes per index, bit-identical for any thread
  // count. The grain matches CG's elementwise updates.
  constexpr std::size_t kElementGrain = 2048;
  const auto elementwise = [&](std::size_t count, auto&& fn) {
    if (pool_ptr == nullptr) {
      fn(0, count);
      return;
    }
    pool_ptr->parallel_for(
        count,
        [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
          fn(begin, end);
        },
        kElementGrain);
  };

  // lambda_0 = sum |dWL| / sum |dD| at the initial placement.
  std::vector<double> grad_wl(state.size(), 0.0);
  std::vector<double> grad_d(state.size(), 0.0);
  wl_model.evaluate(netlist, state, &grad_wl, pool_ptr);
  density_model.evaluate(netlist, state, &grad_d, pool_ptr);
  const double denom = sum_abs(grad_d);
  double lambda = denom > 0.0 ? sum_abs(grad_wl) / denom : 1.0;
  if (lambda <= 0.0) lambda = 1.0;

  PlacementReport report;
  const auto record = [&](const char* point, const char* action,
                          bool recovered, bool alters_result,
                          std::string detail) {
    if (options.recovery != nullptr)
      options.recovery->record({"placement", point, action, recovered,
                                alters_result, std::move(detail)});
  };
  const auto budget_start = std::chrono::steady_clock::now();
  // Snapshot of the last known-finite state, restored if an outer
  // iteration ever produces a non-finite coordinate.
  std::vector<double> finite_state = state;
  // Density + boundary gradient scratch, hoisted out of the objective so
  // the CG loop performs no per-evaluation allocation.
  std::vector<double> dgrad;
  for (std::size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    AUTONCS_TRACE_SCOPE("place/outer", "iter",
                        static_cast<std::int64_t>(outer + 1));
    report.outer_iterations = outer + 1;
    const double lambda_now = lambda;
    const std::size_t grid_builds_at_start = density_model.grid_builds();
    const Objective objective = [&](const std::vector<double>& x,
                                    std::vector<double>* gradient) {
      if (gradient == nullptr) {
        // Value-only line-search trial: same terms, same FP operation
        // order as below, with all gradient work skipped.
        const double wl = wl_model.evaluate(netlist, x, nullptr, pool_ptr);
        double d = density_model.evaluate(netlist, x, nullptr, pool_ptr);
        d += boundary_penalty(netlist, x, options.omega, die_half, nullptr);
        return wl + lambda_now * d;
      }
      dgrad.resize(x.size());
      elementwise(x.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          (*gradient)[i] = 0.0;
          dgrad[i] = 0.0;
        }
      });
      const double wl = wl_model.evaluate(netlist, x, gradient, pool_ptr);
      // Density + boundary gradients accumulate unscaled into the scratch
      // vector, then fold in scaled by lambda.
      double d = density_model.evaluate(netlist, x, &dgrad, pool_ptr);
      d += boundary_penalty(netlist, x, options.omega, die_half, &dgrad);
      elementwise(gradient->size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          (*gradient)[i] += lambda_now * dgrad[i];
      });
      return wl + lambda_now * d;
    };
    const CgResult cg = [&] {
      AUTONCS_TRACE_SCOPE("place/cg");
      return minimize_cg(state, objective, cg_options);
    }();
    if (cg.degraded) report.degraded = true;
    // Stage-boundary finite sweep: CG's own guards make a non-finite state
    // unreachable from finite input, so this catches model-level poisoning
    // before it reaches legalization. Revert to the last finite snapshot
    // and stop with the best placement that exists.
    bool state_finite = true;
    for (double v : state)
      if (!std::isfinite(v)) {
        state_finite = false;
        break;
      }
    if (!state_finite) {
      state = finite_state;
      record("placement.nonfinite_state", "revert", true, true,
             "outer iteration " + std::to_string(outer + 1) +
                 " produced non-finite coordinates; reverted to the last "
                 "finite state");
      report.degraded = true;
      break;
    }
    finite_state = state;
    const double ratio = overlap_ratio(netlist, state, options.omega);
    util::LogLine(util::LogLevel::kInfo, "place")
        << "outer " << outer + 1 << ": lambda=" << lambda_now
        << " f=" << cg.value << " overlap=" << ratio;
    PlacerOuterStats stats;
    stats.lambda = lambda_now;
    stats.objective = cg.value;
    stats.overlap_ratio = ratio;
    stats.hpwl_um = hpwl(netlist, state);
    stats.cg_iterations = cg.iterations;
    stats.cg_converged = cg.converged;
    stats.cg_value_evals = cg.value_evaluations;
    stats.cg_gradient_evals = cg.gradient_evaluations;
    stats.density_grid_builds =
        density_model.grid_builds() - grid_builds_at_start;
    report.cg_value_evals_total += stats.cg_value_evals;
    report.cg_gradient_evals_total += stats.cg_gradient_evals;
    report.density_grid_builds_total += stats.density_grid_builds;
    report.outer.push_back(stats);
    if (util::metrics_enabled()) {
      const auto idx = static_cast<double>(outer + 1);
      util::metric_sample("place/lambda", idx, stats.lambda);
      util::metric_sample("place/objective", idx, stats.objective);
      util::metric_sample("place/overlap", idx, stats.overlap_ratio);
      util::metric_sample("place/hpwl", idx, stats.hpwl_um);
      util::metric_sample("place/cg_iterations", idx,
                          static_cast<double>(stats.cg_iterations));
      util::metric_observe("place/cg_iterations_per_outer",
                           static_cast<double>(stats.cg_iterations));
      util::metric_sample("place/cg_value_evals", idx,
                          static_cast<double>(stats.cg_value_evals));
      util::metric_sample("place/cg_gradient_evals", idx,
                          static_cast<double>(stats.cg_gradient_evals));
      util::metric_sample("place/density_grid_builds", idx,
                          static_cast<double>(stats.density_grid_builds));
    }
    report.lambda_final = lambda_now;
    report.overlap_ratio_before_legalization = ratio;
    if (ratio <= options.overlap_stop_ratio) break;
    if (options.wall_budget_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - budget_start)
              .count();
      if (elapsed_ms >= options.wall_budget_ms) {
        record("placement.wall_budget", "budget_exhausted", true, true,
               "outer loop stopped after " + std::to_string(outer + 1) +
                   " iterations, overlap " + std::to_string(ratio));
        report.budget_exhausted = true;
        report.degraded = true;
        break;
      }
    }
    lambda *= options.lambda_growth;
  }

  LegalizerOptions legal = options.legalizer;
  legal.omega = options.omega;
  legal.die_half = die_half;
  // The grid-pruned sweep produces bit-identical placements; the legacy
  // engine keeps the quadratic reference sweep as its baseline.
  legal.use_flat_grid = !options.legacy_evaluation;
  {
    AUTONCS_TRACE_SCOPE("place/legalize");
    report.legalization = legalize(netlist, state, legal);
  }

  unpack_positions(state, netlist);
  report.hpwl_um = hpwl(netlist, state);
  report.die = placement_bounding_box(netlist, options.omega);
  report.area_um2 = report.die.area();
  report.density_grid_reallocations = density_model.grid_reallocations();
  if (util::metrics_enabled()) {
    util::metric_gauge("place/outer_iterations",
                       static_cast<double>(report.outer_iterations));
    util::metric_gauge("place/lambda_final", report.lambda_final);
    util::metric_gauge("place/legalization_passes",
                       static_cast<double>(report.legalization.passes));
    util::metric_gauge("place/final_overlap",
                       report.legalization.final_overlap_ratio);
    util::metric_gauge("place/final_hpwl_um", report.hpwl_um);
    util::metric_gauge("place/area_um2", report.area_um2);
    util::metric_gauge("place/cg_value_evals_total",
                       static_cast<double>(report.cg_value_evals_total));
    util::metric_gauge("place/cg_gradient_evals_total",
                       static_cast<double>(report.cg_gradient_evals_total));
    util::metric_gauge("place/density_grid_builds_total",
                       static_cast<double>(report.density_grid_builds_total));
    util::metric_gauge(
        "place/density_grid_reallocations",
        static_cast<double>(report.density_grid_reallocations));
  }
  // Memory accounting: objective scratch/cache footprints. Both include
  // pool-dependent buffers (WA pin index, parallel pair scratch), so they
  // are manifest-only (deterministic = false).
  util::mem_record_bytes("place/wa_model", wl_model.footprint_bytes(), false);
  util::mem_record_bytes("place/density_model",
                         density_model.footprint_bytes(), false);
  return report;
}

}  // namespace autoncs::place
