#include "place/density.hpp"

#include <algorithm>
#include <type_traits>
#include <unordered_map>

#include "util/check.hpp"

namespace autoncs::place {

namespace {

/// Legacy uniform-grid neighbor finder: a per-evaluation `unordered_map`
/// from packed bin coordinates to bucket vectors. Kept (behind
/// `DensityModel::use_flat_grid == false`) as the reference engine for the
/// determinism regression test and the bench_perf_placer baseline. Note
/// `pack` truncates bin coordinates to 32 bits, so bins ~2^32 buckets
/// apart alias into one bucket — harmless for values (aliased candidates
/// fail the softplus tail check) but wasteful; the flat grid
/// (place/spatial_grid.hpp) keeps exact 64-bit bin coordinates.
class SpatialHash {
 public:
  SpatialHash(const netlist::Netlist& netlist, const std::vector<double>& state,
              double interaction_reach, double bucket)
      : bucket_(bucket), reach_(interaction_reach) {
    for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
      buckets_[key(state[2 * c], state[2 * c + 1])].push_back(c);
    }
  }

  /// Calls fn(j) for every cell j > i whose center lies within the
  /// interaction reach of cell i's center (conservative superset).
  template <typename Fn>
  void for_candidates(std::size_t i, double xi, double yi, Fn&& fn) const {
    const auto span = static_cast<long long>(std::ceil(reach_ / bucket_));
    const long long bx = coord(xi);
    const long long by = coord(yi);
    for (long long dx = -span; dx <= span; ++dx) {
      for (long long dy = -span; dy <= span; ++dy) {
        const auto it = buckets_.find(pack(bx + dx, by + dy));
        if (it == buckets_.end()) continue;
        for (std::size_t j : it->second) {
          if (j > i) fn(j);
        }
      }
    }
  }

 private:
  long long coord(double v) const {
    return static_cast<long long>(std::floor(v / bucket_));
  }
  static std::uint64_t pack(long long x, long long y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(y));
  }
  std::uint64_t key(double x, double y) const { return pack(coord(x), coord(y)); }

  double bucket_;
  double reach_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
};

double max_virtual_half_extent(const netlist::Netlist& netlist, double omega) {
  double out = 0.0;
  for (const auto& cell : netlist.cells) {
    out = std::max(out, 0.5 * omega * std::max(cell.width, cell.height));
  }
  return out;
}

}  // namespace

template <typename Grid>
double DensityModel::evaluate_with_grid(const Grid& grid,
                                        const netlist::Netlist& netlist,
                                        const std::vector<double>& state,
                                        std::vector<double>* gradient,
                                        util::ThreadPool* pool, double tail,
                                        bool fill_cache) const {
  const std::size_t n = netlist.cells.size();
  const bool with_gradient = gradient != nullptr;
  // The flat grid hands candidates back with their packed {x, y, hw, hh}
  // slot — one contiguous stream instead of four gathers; the slots hold
  // copies of the same doubles, so the pair geometry is bit-identical.
  constexpr bool kPacked = std::is_same_v<Grid, UniformGrid>;

  if (pool == nullptr || pool->size() == 1) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = state[2 * i];
      const double yi = state[2 * i + 1];
      const double hwi = half_w_[i];
      const double hhi = half_h_[i];
      const auto handle = [&](std::size_t j, double dx, double dy, double tx,
                              double ty) {
        DensityPairTerm term;
        if (!density_pair_kernel(dx, dy, tx, ty, beta, tail, with_gradient,
                                 term)) {
          return;
        }
        total += term.area;
        if (fill_cache) {
          cache_pairs_.push_back({static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j), term.ox,
                                  term.oy});
        }
        if (with_gradient) {
          (*gradient)[2 * i] += term.sx;
          (*gradient)[2 * j] -= term.sx;
          (*gradient)[2 * i + 1] += term.sy;
          (*gradient)[2 * j + 1] -= term.sy;
        }
      };
      if constexpr (kPacked) {
        grid.for_candidates_packed(
            i, xi, yi, [&](std::size_t j, const double* p) {
              handle(j, xi - p[0], yi - p[1], hwi + p[2], hhi + p[3]);
            });
      } else {
        grid.for_candidates(i, xi, yi, [&](std::size_t j) {
          handle(j, xi - state[2 * j], yi - state[2 * j + 1],
                 hwi + half_w_[j], hhi + half_h_[j]);
        });
      }
    }
    return total;
  }

  // Phase 1 (parallel): cell i owns the pairs (i, j), j > i, and writes
  // only its own scratch list. The grid is read-only and its candidate
  // order is fixed by construction, so the lists are independent of the
  // thread count.
  // A block of ~32 cells of candidate enumeration amortizes one worker
  // wakeup; the fixed grain keeps the block grid thread-count-invariant.
  constexpr std::size_t kCellGrain = 32;
  pairs_.resize(n);
  pool->parallel_for(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        for (std::size_t i = begin; i < end; ++i) {
          auto& list = pairs_[i];
          list.clear();
          const double xi = state[2 * i];
          const double yi = state[2 * i + 1];
          const double hwi = half_w_[i];
          const double hhi = half_h_[i];
          const auto handle = [&](std::size_t j, double dx, double dy,
                                  double tx, double ty) {
            DensityPairTerm pair;
            if (!density_pair_kernel(dx, dy, tx, ty, beta, tail, with_gradient,
                                     pair)) {
              return;
            }
            PairTerm term;
            term.j = j;
            term.area = pair.area;
            term.ox = pair.ox;
            term.oy = pair.oy;
            term.sx = pair.sx;
            term.sy = pair.sy;
            list.push_back(term);
          };
          if constexpr (kPacked) {
            grid.for_candidates_packed(
                i, xi, yi, [&](std::size_t j, const double* p) {
                  handle(j, xi - p[0], yi - p[1], hwi + p[2], hhi + p[3]);
                });
          } else {
            grid.for_candidates(i, xi, yi, [&](std::size_t j) {
              handle(j, xi - state[2 * j], yi - state[2 * j + 1],
                     hwi + half_w_[j], hhi + half_h_[j]);
            });
          }
        }
      },
      kCellGrain);

  // Phase 2 (sequential reduction in (i, candidate) order — the FP
  // operation order of the single-thread loop above).
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const PairTerm& term : pairs_[i]) {
      total += term.area;
      if (fill_cache) {
        cache_pairs_.push_back({static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(term.j), term.ox,
                                term.oy});
      }
      if (with_gradient) {
        (*gradient)[2 * i] += term.sx;
        (*gradient)[2 * term.j] -= term.sx;
        (*gradient)[2 * i + 1] += term.sy;
        (*gradient)[2 * term.j + 1] -= term.sy;
      }
    }
  }
  return total;
}

double DensityModel::evaluate(const netlist::Netlist& netlist,
                              const std::vector<double>& state,
                              std::vector<double>* gradient,
                              util::ThreadPool* pool) const {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  AUTONCS_CHECK(omega >= 1.0, "omega must be at least 1");
  AUTONCS_CHECK(beta > 0.0, "beta must be positive");
  if (gradient != nullptr) {
    AUTONCS_CHECK(gradient->size() == state.size(),
                  "gradient size must match the state");
  }
  const std::size_t n = netlist.cells.size();
  if (n < 2) return 0.0;

  // Acceptance replay: a gradient request at the exact point of the last
  // value-only evaluation (the accepted Armijo trial) reuses that pass's
  // surviving pairs and total. The pairs are replayed in the recorded
  // (i, candidate) order with the recorded geometry, so the gradient is
  // bit-identical to a full evaluation — only the enumeration, softplus,
  // and grid-build work is skipped.
  if (use_flat_grid && gradient != nullptr && cache_valid_ &&
      cache_beta_ == beta && cache_omega_ == omega && cache_state_ == state) {
    // The pair geometry is recomputed exactly as the value pass derived it:
    // dx from the same state doubles the grid packed, tx from the same
    // half-extent sums — identical values, so the replayed gradient terms
    // match a full evaluation bit for bit.
    const std::size_t pairs = cache_pairs_.size();
    const auto pair_terms = [&](std::size_t k, DensityPairTerm& term) {
      const CachedPair& p = cache_pairs_[k];
      const double dx = state[2 * p.i] - state[2 * p.j];
      const double dy = state[2 * p.i + 1] - state[2 * p.j + 1];
      const double tx = half_w_[p.i] + half_w_[p.j];
      const double ty = half_h_[p.i] + half_h_[p.j];
      density_pair_gradient(dx, dy, tx, ty, p.ox, p.oy, beta, term);
    };
    if (pool != nullptr && pool->size() > 1 && pairs >= 2) {
      // The sigmoid work parallelizes — each pair owns its scratch slot —
      // and the scatter (whose additions alias across pairs sharing a
      // cell) stays sequential in the recorded order, so the gradient is
      // bit-identical to the serial replay.
      constexpr std::size_t kReplayGrain = 1024;
      replay_sx_.resize(pairs);
      replay_sy_.resize(pairs);
      pool->parallel_for(
          pairs,
          [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
            for (std::size_t k = begin; k < end; ++k) {
              DensityPairTerm term;
              pair_terms(k, term);
              replay_sx_[k] = term.sx;
              replay_sy_[k] = term.sy;
            }
          },
          kReplayGrain);
      for (std::size_t k = 0; k < pairs; ++k) {
        const CachedPair& p = cache_pairs_[k];
        (*gradient)[2 * p.i] += replay_sx_[k];
        (*gradient)[2 * p.j] -= replay_sx_[k];
        (*gradient)[2 * p.i + 1] += replay_sy_[k];
        (*gradient)[2 * p.j + 1] -= replay_sy_[k];
      }
    } else {
      for (std::size_t k = 0; k < pairs; ++k) {
        const CachedPair& p = cache_pairs_[k];
        DensityPairTerm term;
        pair_terms(k, term);
        (*gradient)[2 * p.i] += term.sx;
        (*gradient)[2 * p.j] -= term.sx;
        (*gradient)[2 * p.i + 1] += term.sy;
        (*gradient)[2 * p.j + 1] -= term.sy;
      }
    }
    return cache_total_;
  }

  // Softplus tail: beyond penetration < -tail/beta the contribution is
  // below exp(-30) and can be skipped.
  const double tail = 30.0 / beta;
  const double r_max = max_virtual_half_extent(netlist, omega);
  const double reach = 2.0 * r_max + tail;
  const double bucket = std::max(reach / 2.0, 1e-6);

  half_w_.resize(n);
  half_h_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    half_w_[c] = 0.5 * omega * netlist.cells[c].width;
    half_h_[c] = 0.5 * omega * netlist.cells[c].height;
  }
  ++grid_builds_;

  const bool fill_cache = use_flat_grid && gradient == nullptr;
  if (fill_cache) cache_pairs_.clear();
  cache_valid_ = false;

  if (use_flat_grid) {
    grid_.build(netlist, state, reach, bucket, pool, half_w_.data(),
                half_h_.data());
    const double total = evaluate_with_grid(grid_, netlist, state, gradient,
                                            pool, tail, fill_cache);
    if (fill_cache) {
      cache_state_ = state;
      cache_total_ = total;
      cache_beta_ = beta;
      cache_omega_ = omega;
      cache_valid_ = true;
    }
    return total;
  }
  const SpatialHash hash(netlist, state, reach, bucket);
  return evaluate_with_grid(hash, netlist, state, gradient, pool, tail, false);
}

double exact_overlap_area(const netlist::Netlist& netlist,
                          const std::vector<double>& state, double omega) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  const std::size_t n = netlist.cells.size();
  if (n < 2) return 0.0;
  const double r_max = max_virtual_half_extent(netlist, omega);
  const double reach = 2.0 * r_max;
  const double bucket = std::max(reach / 2.0, 1e-6);
  UniformGrid grid;
  grid.build(netlist, state, reach, bucket);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& ci = netlist.cells[i];
    const double xi = state[2 * i];
    const double yi = state[2 * i + 1];
    grid.for_candidates(i, xi, yi, [&](std::size_t j) {
      const auto& cj = netlist.cells[j];
      const double ox = std::max(
          0.0, 0.5 * omega * (ci.width + cj.width) - std::abs(xi - state[2 * j]));
      const double oy = std::max(0.0, 0.5 * omega * (ci.height + cj.height) -
                                          std::abs(yi - state[2 * j + 1]));
      total += ox * oy;
    });
  }
  return total;
}

double overlap_ratio(const netlist::Netlist& netlist,
                     const std::vector<double>& state, double omega) {
  double area = 0.0;
  for (const auto& cell : netlist.cells)
    area += omega * cell.width * omega * cell.height;
  if (area <= 0.0) return 0.0;
  return exact_overlap_area(netlist, state, omega) / area;
}

}  // namespace autoncs::place
