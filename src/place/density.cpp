#include "place/density.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace autoncs::place {

namespace {

/// Uniform-grid neighbor finder over cell centers. Cells are binned by
/// center; queries scan every bin within the maximum interaction distance,
/// so no pair within range is missed regardless of cell size disparity.
class SpatialHash {
 public:
  SpatialHash(const netlist::Netlist& netlist, const std::vector<double>& state,
              double interaction_reach, double bucket)
      : bucket_(bucket), reach_(interaction_reach) {
    for (std::size_t c = 0; c < netlist.cells.size(); ++c) {
      buckets_[key(state[2 * c], state[2 * c + 1])].push_back(c);
    }
  }

  /// Calls fn(j) for every cell j > i whose center lies within the
  /// interaction reach of cell i's center (conservative superset).
  template <typename Fn>
  void for_candidates(std::size_t i, double xi, double yi, Fn&& fn) const {
    const auto span = static_cast<long long>(std::ceil(reach_ / bucket_));
    const long long bx = coord(xi);
    const long long by = coord(yi);
    for (long long dx = -span; dx <= span; ++dx) {
      for (long long dy = -span; dy <= span; ++dy) {
        const auto it = buckets_.find(pack(bx + dx, by + dy));
        if (it == buckets_.end()) continue;
        for (std::size_t j : it->second) {
          if (j > i) fn(j);
        }
      }
    }
  }

 private:
  long long coord(double v) const {
    return static_cast<long long>(std::floor(v / bucket_));
  }
  static std::uint64_t pack(long long x, long long y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(y));
  }
  std::uint64_t key(double x, double y) const { return pack(coord(x), coord(y)); }

  double bucket_;
  double reach_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
};

double softplus(double z, double beta) {
  const double t = beta * z;
  if (t > 30.0) return z;
  if (t < -30.0) return 0.0;
  return std::log1p(std::exp(t)) / beta;
}

double sigmoid(double z, double beta) {
  const double t = beta * z;
  if (t > 30.0) return 1.0;
  if (t < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-t));
}

double max_virtual_half_extent(const netlist::Netlist& netlist, double omega) {
  double out = 0.0;
  for (const auto& cell : netlist.cells) {
    out = std::max(out, 0.5 * omega * std::max(cell.width, cell.height));
  }
  return out;
}

}  // namespace

double DensityModel::evaluate(const netlist::Netlist& netlist,
                              const std::vector<double>& state,
                              std::vector<double>* gradient,
                              util::ThreadPool* pool) const {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  AUTONCS_CHECK(omega >= 1.0, "omega must be at least 1");
  AUTONCS_CHECK(beta > 0.0, "beta must be positive");
  if (gradient != nullptr) {
    AUTONCS_CHECK(gradient->size() == state.size(),
                  "gradient size must match the state");
  }
  const std::size_t n = netlist.cells.size();
  if (n < 2) return 0.0;

  // Softplus tail: beyond penetration < -tail/beta the contribution is
  // below exp(-30) and can be skipped.
  const double tail = 30.0 / beta;
  const double r_max = max_virtual_half_extent(netlist, omega);
  const double reach = 2.0 * r_max + tail;
  const double bucket = std::max(reach / 2.0, 1e-6);
  const SpatialHash hash(netlist, state, reach, bucket);

  if (pool == nullptr || pool->size() == 1) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& ci = netlist.cells[i];
      const double xi = state[2 * i];
      const double yi = state[2 * i + 1];
      const double hwi = 0.5 * omega * ci.width;
      const double hhi = 0.5 * omega * ci.height;
      hash.for_candidates(i, xi, yi, [&](std::size_t j) {
        const auto& cj = netlist.cells[j];
        const double dx = xi - state[2 * j];
        const double dy = yi - state[2 * j + 1];
        const double tx = hwi + 0.5 * omega * cj.width;
        const double ty = hhi + 0.5 * omega * cj.height;
        const double zx = tx - std::abs(dx);
        const double zy = ty - std::abs(dy);
        if (zx < -tail || zy < -tail) return;
        const double ox = softplus(zx, beta);
        const double oy = softplus(zy, beta);
        total += ox * oy;
        if (gradient != nullptr) {
          const double sx = (dx > 0.0 ? -1.0 : (dx < 0.0 ? 1.0 : 0.0)) *
                            sigmoid(zx, beta) * oy;
          const double sy = (dy > 0.0 ? -1.0 : (dy < 0.0 ? 1.0 : 0.0)) *
                            sigmoid(zy, beta) * ox;
          (*gradient)[2 * i] += sx;
          (*gradient)[2 * j] -= sx;
          (*gradient)[2 * i + 1] += sy;
          (*gradient)[2 * j + 1] -= sy;
        }
      });
    }
    return total;
  }

  // Phase 1 (parallel): cell i owns the pairs (i, j), j > i, and writes
  // only its own scratch list. The hash is read-only and its candidate
  // order is fixed by construction, so the lists are independent of the
  // thread count.
  pairs_.resize(n);
  pool->parallel_for(
      n, [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        for (std::size_t i = begin; i < end; ++i) {
          auto& list = pairs_[i];
          list.clear();
          const auto& ci = netlist.cells[i];
          const double xi = state[2 * i];
          const double yi = state[2 * i + 1];
          const double hwi = 0.5 * omega * ci.width;
          const double hhi = 0.5 * omega * ci.height;
          hash.for_candidates(i, xi, yi, [&](std::size_t j) {
            const auto& cj = netlist.cells[j];
            const double dx = xi - state[2 * j];
            const double dy = yi - state[2 * j + 1];
            const double tx = hwi + 0.5 * omega * cj.width;
            const double ty = hhi + 0.5 * omega * cj.height;
            const double zx = tx - std::abs(dx);
            const double zy = ty - std::abs(dy);
            if (zx < -tail || zy < -tail) return;
            const double ox = softplus(zx, beta);
            const double oy = softplus(zy, beta);
            PairTerm term;
            term.j = j;
            term.area = ox * oy;
            if (gradient != nullptr) {
              term.sx = (dx > 0.0 ? -1.0 : (dx < 0.0 ? 1.0 : 0.0)) *
                        sigmoid(zx, beta) * oy;
              term.sy = (dy > 0.0 ? -1.0 : (dy < 0.0 ? 1.0 : 0.0)) *
                        sigmoid(zy, beta) * ox;
            }
            list.push_back(term);
          });
        }
      });

  // Phase 2 (sequential reduction in (i, candidate) order — the FP
  // operation order of the single-thread loop above).
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const PairTerm& term : pairs_[i]) {
      total += term.area;
      if (gradient != nullptr) {
        (*gradient)[2 * i] += term.sx;
        (*gradient)[2 * term.j] -= term.sx;
        (*gradient)[2 * i + 1] += term.sy;
        (*gradient)[2 * term.j + 1] -= term.sy;
      }
    }
  }
  return total;
}

double exact_overlap_area(const netlist::Netlist& netlist,
                          const std::vector<double>& state, double omega) {
  AUTONCS_CHECK(state.size() == netlist.cells.size() * 2,
                "state size must be 2 * cell count");
  const std::size_t n = netlist.cells.size();
  if (n < 2) return 0.0;
  const double r_max = max_virtual_half_extent(netlist, omega);
  const double reach = 2.0 * r_max;
  const double bucket = std::max(reach / 2.0, 1e-6);
  const SpatialHash hash(netlist, state, reach, bucket);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& ci = netlist.cells[i];
    const double xi = state[2 * i];
    const double yi = state[2 * i + 1];
    hash.for_candidates(i, xi, yi, [&](std::size_t j) {
      const auto& cj = netlist.cells[j];
      const double ox = std::max(
          0.0, 0.5 * omega * (ci.width + cj.width) - std::abs(xi - state[2 * j]));
      const double oy = std::max(0.0, 0.5 * omega * (ci.height + cj.height) -
                                          std::abs(yi - state[2 * j + 1]));
      total += ox * oy;
    });
  }
  return total;
}

double overlap_ratio(const netlist::Netlist& netlist,
                     const std::vector<double>& state, double omega) {
  double area = 0.0;
  for (const auto& cell : netlist.cells)
    area += omega * cell.width * omega * cell.height;
  if (area <= 0.0) return 0.0;
  return exact_overlap_area(netlist, state, omega) / area;
}

}  // namespace autoncs::place
