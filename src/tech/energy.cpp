#include "tech/energy.hpp"

#include "util/check.hpp"

namespace autoncs::tech {

double EnergyModel::device_read_energy_fj() const {
  AUTONCS_CHECK(device_resistance_ohm > 0.0, "device resistance must be > 0");
  // P = V^2 / R [W]; E = P * t. V^2/R in watts, t in ns -> 1e-9 J, to fJ
  // -> 1e15: net factor 1e6.
  return read_voltage_v * read_voltage_v / device_resistance_ohm *
         read_pulse_ns * 1e6;
}

double EnergyModel::wire_switching_energy_fj(double length_um,
                                             double capacitance_ff_per_um) const {
  AUTONCS_CHECK(length_um >= 0.0, "length cannot be negative");
  // C in fF, V in volts: 1/2 C V^2 is directly in fJ.
  return activity_factor * 0.5 * capacitance_ff_per_um * length_um *
         supply_voltage_v * supply_voltage_v;
}

}  // namespace autoncs::tech
