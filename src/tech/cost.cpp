#include "tech/cost.hpp"

namespace autoncs::tech {

double reduction(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline;
}

}  // namespace autoncs::tech
