// Technology model: area and delay of crossbars, discrete synapses, and
// neurons, plus wire RC, scaled to a 45 nm node.
//
// The paper extracts device areas and delays from its refs [15] and [2] and
// scales them to 45 nm without publishing the numbers, so this model is
// parameterized and calibrated to land the FullCro baseline near Table 1's
// magnitudes (~1.95 ns average wire delay, areas of order 10^4 um^2, with a
// 140 um scale bar on Fig. 10 layouts). Every relative result — the
// FullCro vs AutoNCS reductions — depends only on topology, not on these
// absolute constants; see DESIGN.md "Substitutions".
#pragma once

#include <cstddef>

namespace autoncs::tech {

struct TechnologyModel {
  /// Pitch of one memristor cell in a crossbar (um). The Fig. 10 axes are
  /// in units of this pitch.
  double memristor_pitch_um = 0.28;

  /// Peripheral ring around a crossbar for drivers/training circuitry (um
  /// added to each side's extent).
  double crossbar_periphery_um = 2.0;

  /// Footprint side of a discrete memristor synapse cell (um): memristor
  /// plus access device, a few pitches across.
  double synapse_side_um = 0.84;

  /// Footprint side of an integrate-and-fire neuron cell (um), from the
  /// capacitor-based design of ref [2].
  double neuron_side_um = 2.24;

  /// Interconnect unit resistance (ohm / um) on intermediate metal.
  double wire_resistance_ohm_per_um = 2.0;

  /// Interconnect unit capacitance (fF / um).
  double wire_capacitance_ff_per_um = 0.10;

  /// Internal RC delay of a maximum-size (64x64) crossbar in ns; the delay
  /// of a size-s crossbar scales as (s/64)^2 (wire RC grows quadratically
  /// with length). Calibrated so FullCro averages ~1.95 ns (Table 1).
  double crossbar_delay_at_64_ns = 1.90;

  /// Fixed switching delay through a discrete synapse (ns).
  double synapse_delay_ns = 0.05;

  /// Side length of a size-s crossbar cell (um).
  double crossbar_side_um(std::size_t size) const;
  /// Area of a size-s crossbar cell (um^2).
  double crossbar_area_um2(std::size_t size) const;
  double synapse_area_um2() const;
  double neuron_area_um2() const;

  /// Internal delay of a size-s crossbar (ns).
  double crossbar_delay_ns(std::size_t size) const;

  /// Elmore delay of a routed wire of the given length (ns):
  /// 0.5 * r * c * L^2 (distributed RC line).
  double wire_delay_ns(double length_um) const;
};

/// A 45 nm default instance.
const TechnologyModel& default_tech();

}  // namespace autoncs::tech
