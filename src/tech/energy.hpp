// Read-energy model (extension beyond the paper's Eq. 3 cost).
//
// One inference (matrix-vector pass) costs:
//  * device read energy: every programmed memristor conducts for the read
//    pulse, E = V_read^2 / R * t_read,
//  * row-driver energy per used crossbar row,
//  * interconnect switching energy: alpha * 1/2 * C_wire * V_dd^2 over the
//    routed wire capacitance.
// All constants are 45 nm-class defaults in the same spirit as
// TechnologyModel; the interesting output is the AutoNCS/FullCro ratio.
#pragma once

#include <cstddef>

namespace autoncs::tech {

struct EnergyModel {
  /// Crossbar read voltage (V).
  double read_voltage_v = 0.5;
  /// Read pulse width (ns).
  double read_pulse_ns = 10.0;
  /// Average programmed device resistance during read (ohm).
  double device_resistance_ohm = 500e3;
  /// Logic/interconnect supply (V).
  double supply_voltage_v = 0.9;
  /// Switching activity factor of the routed wires.
  double activity_factor = 0.5;
  /// Energy of one row driver firing once (fJ).
  double row_driver_energy_fj = 2.0;

  /// Energy of one programmed device conducting for one read pulse (fJ).
  double device_read_energy_fj() const;

  /// Switching energy of a routed wire of the given length (fJ), given the
  /// technology's capacitance per um.
  double wire_switching_energy_fj(double length_um,
                                  double capacitance_ff_per_um) const;
};

}  // namespace autoncs::tech
