// Physical cost function (Eq. 3 of the paper): Cost = alpha*L + beta*A +
// delta*T with total wirelength L, chip area A, and average wire delay T.
// The experiments set alpha = beta = delta = 1.
#pragma once

namespace autoncs::tech {

struct CostWeights {
  double alpha = 1.0;  // wirelength weight
  double beta = 1.0;   // area weight
  double delta = 1.0;  // delay weight
};

struct PhysicalCost {
  double total_wirelength_um = 0.0;  // L
  double area_um2 = 0.0;             // A
  double average_delay_ns = 0.0;     // T

  double combined(const CostWeights& weights = {}) const {
    return weights.alpha * total_wirelength_um + weights.beta * area_um2 +
           weights.delta * average_delay_ns;
  }
};

/// Relative reduction of `ours` vs `baseline` for one metric (e.g. 0.478
/// means 47.8% lower).
double reduction(double baseline, double ours);

}  // namespace autoncs::tech
