#include "tech/tech_model.hpp"

#include "util/check.hpp"

namespace autoncs::tech {

double TechnologyModel::crossbar_side_um(std::size_t size) const {
  AUTONCS_CHECK(size > 0, "crossbar size must be positive");
  return static_cast<double>(size) * memristor_pitch_um + crossbar_periphery_um;
}

double TechnologyModel::crossbar_area_um2(std::size_t size) const {
  const double side = crossbar_side_um(size);
  return side * side;
}

double TechnologyModel::synapse_area_um2() const {
  return synapse_side_um * synapse_side_um;
}

double TechnologyModel::neuron_area_um2() const {
  return neuron_side_um * neuron_side_um;
}

double TechnologyModel::crossbar_delay_ns(std::size_t size) const {
  AUTONCS_CHECK(size > 0, "crossbar size must be positive");
  const double ratio = static_cast<double>(size) / 64.0;
  return crossbar_delay_at_64_ns * ratio * ratio;
}

double TechnologyModel::wire_delay_ns(double length_um) const {
  AUTONCS_CHECK(length_um >= 0.0, "wire length cannot be negative");
  // r [ohm/um] * c [fF/um] * L^2 [um^2] / 2 = delay in fs*1e... :
  // ohm * fF = 1e-15 s = 1e-6 ns.
  return 0.5 * wire_resistance_ohm_per_um * wire_capacitance_ff_per_um *
         length_um * length_um * 1e-6;
}

const TechnologyModel& default_tech() {
  static const TechnologyModel model{};
  return model;
}

}  // namespace autoncs::tech
